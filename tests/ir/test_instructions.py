"""Unit tests for instruction construction and typing rules."""

import pytest

import repro.ir as ir
from repro.ir import (
    Alloca,
    BinOp,
    Constant,
    GEP,
    ICmp,
    Load,
    Store,
    StructType,
    I8,
    I32,
    array,
    ptr,
)
from repro.ir.values import ConstantPointer


class TestAlloca:
    def test_result_is_pointer(self):
        a = Alloca(I32)
        assert a.type == ptr(I32)

    def test_byte_size_word_aligned(self):
        assert Alloca(I8).byte_size == 4
        assert Alloca(I8, count=3).byte_size == 12
        assert Alloca(array(I8, 5)).byte_size == 8

    def test_struct_size(self):
        s = StructType("s", [("a", I32), ("b", I8)])
        assert Alloca(s).byte_size == 8


class TestLoadStore:
    def test_load_type_from_pointee(self):
        p = ConstantPointer(0x20000000, ptr(I16 := ir.I16))
        assert Load(p).type == ir.I16

    def test_load_rejects_non_pointer(self):
        with pytest.raises(TypeError):
            Load(Constant(5))

    def test_load_rejects_aggregate(self):
        p = ConstantPointer(0x20000000, ptr(array(I32, 4)))
        with pytest.raises(TypeError):
            Load(p)

    def test_store_rejects_non_pointer(self):
        with pytest.raises(TypeError):
            Store(Constant(1), Constant(2))


class TestGEP:
    def test_scalar_pointer_first_index(self):
        p = ConstantPointer(0x20000000, ptr(I32))
        g = GEP(p, [Constant(2)])
        assert g.type == ptr(I32)

    def test_into_array(self):
        p = ConstantPointer(0x20000000, ptr(array(I32, 8)))
        g = GEP(p, [Constant(0), Constant(3)])
        assert g.type == ptr(I32)

    def test_into_struct_needs_constant(self):
        s = StructType("s", [("a", I32), ("b", I8)])
        p = ConstantPointer(0x20000000, ptr(s))
        g = GEP(p, [Constant(0), Constant(1)])
        assert g.type == ptr(I8)
        load = Load(GEP(p, [Constant(0), Constant(0)]))
        assert load.type == I32

    def test_struct_dynamic_index_rejected(self):
        s = StructType("s", [("a", I32)])
        p = ConstantPointer(0x20000000, ptr(s))
        dynamic = Alloca(I32)
        with pytest.raises(TypeError):
            GEP(p, [Constant(0), Load(dynamic)])

    def test_cannot_index_scalar(self):
        p = ConstantPointer(0x20000000, ptr(I32))
        with pytest.raises(TypeError):
            GEP(p, [Constant(0), Constant(1)])


class TestBinOpICmp:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("pow", Constant(1), Constant(2))

    def test_icmp_result_i32(self):
        c = ICmp("eq", Constant(1), Constant(1))
        assert c.type == I32

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            ICmp("gt", Constant(1), Constant(2))


class TestTerminators:
    def test_block_rejects_second_terminator(self, builder):
        _module, _func, b = builder
        b.ret(0)
        with pytest.raises(ValueError):
            b.ret(1)

    def test_successors(self, builder):
        _module, func, b = builder
        then_block = b.add_block("t")
        else_block = b.add_block("e")
        br = b.br(b.icmp("eq", 1, 1), then_block, else_block)
        assert br.successors == [then_block, else_block]
        b.position_at_end(then_block)
        assert b.ret(0).successors == []

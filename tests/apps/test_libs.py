"""Unit tests for the IR libraries: mini-FAT filesystem, network stack,
libc, and crypto."""

import pytest

import repro.ir as ir
from repro.apps.hal.crypto import add_crypto, fnv1a_host
from repro.apps.hal.libc import add_libc
from repro.apps.hal.storage import add_sd_hal
from repro.apps.lib import fatfs, netstack
from repro.apps.lib.fatfs import make_disk_image
from repro.apps.lib.netstack import make_tcp_frame, parse_reply
from repro.hw import Machine, stm32479i_eval
from repro.hw.peripherals import SDCard
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I8, I32, VOID, array


class TestDiskImage:
    def test_superblock_magic(self):
        image = make_disk_image({})
        assert int.from_bytes(image[0:4], "little") == fatfs.MAGIC

    def test_file_content_placed_in_data_blocks(self):
        image = make_disk_image({b"A       ": b"hello"})
        data_block = fatfs.DATA_START + 1  # first allocated FAT entry
        start = data_block * 512
        assert image[start:start + 5] == b"hello"

    def test_multi_block_chain(self):
        content = bytes(range(256)) * 3  # 768 bytes: two blocks
        image = make_disk_image({b"BIG     ": content})
        fat = [int.from_bytes(image[512 + 4 * i:516 + 4 * i], "little")
               for i in range(fatfs.FAT_ENTRIES)]
        assert fat[1] == 2
        assert fat[2] == fatfs.FAT_END

    def test_too_many_files_rejected(self):
        files = {f"F{i:02d}     ".encode(): b"x" for i in range(20)}
        with pytest.raises(ValueError):
            make_disk_image(files)


class TestFilesystemRoundtrip:
    def _run(self, image_bytes, program):
        """Build a module with fatfs + `program(module, fs, libc)`."""
        board = stm32479i_eval()
        module = ir.Module("fs_test")
        libc = add_libc(module)
        sd = add_sd_hal(module, board)
        fs = fatfs.add_fatfs(module, sd, libc)
        program(module, fs, libc)
        machine = Machine(board)
        machine.attach_device("SDIO", SDCard(image=image_bytes))
        image = build_vanilla_image(module, board)
        image.initialize_memory(machine)
        interp = Interpreter(machine, image, max_instructions=20_000_000)
        return interp.run(), machine

    def test_read_existing_file(self):
        content = b"The quick brown fox jumps over the lazy dog."
        disk = make_disk_image({b"TEST    ": content})

        def program(module, fs, libc):
            fsobj = module.add_global("fsobj", fs.fatfs_t)
            fil = module.add_global("fil", fs.fil_t)
            name = module.add_global("name", array(I8, 8), b"TEST    ",
                                     is_const=True)
            out = module.add_global("out", array(I8, 64))
            _m, b = ir.define(module, "main", I32, [])
            b.call(fs.f_mount, fsobj)
            b.call(fs.f_open, fil, fsobj, b.gep(name, 0, 0), 0)
            n = b.call(fs.f_read, fil, fsobj, b.gep(out, 0, 0), 64)
            b.halt(n)

        code, machine = self._run(disk, program)
        assert code == len(content)

    def test_mount_rejects_bad_magic(self):
        def program(module, fs, libc):
            fsobj = module.add_global("fsobj", fs.fatfs_t)
            _m, b = ir.define(module, "main", I32, [])
            b.halt(b.call(fs.f_mount, fsobj))

        code, _ = self._run(b"\x00" * 4096, program)
        assert code == 1  # mount error

    def test_create_write_read_roundtrip_multiblock(self):
        payload = bytes((i * 7) & 0xFF for i in range(700))  # 2 blocks

        def program(module, fs, libc):
            fsobj = module.add_global("fsobj", fs.fatfs_t)
            fil = module.add_global("fil", fs.fil_t)
            name = module.add_global("name", array(I8, 8), b"NEW     ",
                                     is_const=True)
            src = module.add_global("src", array(I8, 700), list(payload))
            dst = module.add_global("dst", array(I8, 700))
            _m, b = ir.define(module, "main", I32, [])
            b.call(fs.f_mount, fsobj)
            b.call(fs.f_open, fil, fsobj, b.gep(name, 0, 0), 1)
            b.call(fs.f_write, fil, fsobj, b.gep(src, 0, 0), 700)
            b.call(fs.f_close, fil, fsobj)
            b.call(fs.f_open, fil, fsobj, b.gep(name, 0, 0), 0)
            n = b.call(fs.f_read, fil, fsobj, b.gep(dst, 0, 0), 700)
            diff = b.call(libc.memcmp, b.gep(src, 0, 0), b.gep(dst, 0, 0),
                          700)
            ok = b.and_(b.icmp("eq", n, 700), b.icmp("eq", diff, 0))
            b.halt(ok)

        code, _ = self._run(make_disk_image({}), program)
        assert code == 1

    def test_open_missing_file_fails(self):
        def program(module, fs, libc):
            fsobj = module.add_global("fsobj", fs.fatfs_t)
            fil = module.add_global("fil", fs.fil_t)
            name = module.add_global("name", array(I8, 8), b"MISSING ",
                                     is_const=True)
            _m, b = ir.define(module, "main", I32, [])
            b.call(fs.f_mount, fsobj)
            b.halt(b.call(fs.f_open, fil, fsobj, b.gep(name, 0, 0), 0))

        code, _ = self._run(make_disk_image({}), program)
        assert code == 1


class TestNetstackHost:
    def test_frame_checksum_validates(self):
        frame = make_tcp_frame(b"data")
        header = frame[14:34]
        assert netstack._ip_checksum(
            header[:10] + b"\x00\x00" + header[12:]
        ) == int.from_bytes(header[10:12], "big")

    def test_corrupt_checksum_flag(self):
        good = make_tcp_frame(b"x")
        bad = make_tcp_frame(b"x", corrupt_checksum=True)
        assert good[24:26] != bad[24:26]

    def test_parse_reply_fields(self):
        frame = make_tcp_frame(b"payload")
        parsed = parse_reply(frame)
        assert parsed["dst_port"] == netstack.ECHO_PORT
        assert parsed["payload"] == b"payload"


class TestCryptoAndLibc:
    def _exec(self, module):
        from repro.hw import stm32f4_discovery

        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        return Interpreter(machine, image).run()

    def test_fnv1a_matches_host_oracle(self):
        module = ir.Module("m")
        crypto = add_crypto(module)
        data = module.add_global("data", array(I8, 8), b"pin:1234")
        _m, b = ir.define(module, "main", I32, [])
        b.halt(b.call(crypto.fnv1a, b.gep(data, 0, 0), 8))
        assert self._exec(module) == fnv1a_host(b"pin:1234")

    def test_memcmp_semantics(self):
        module = ir.Module("m")
        libc = add_libc(module)
        a = module.add_global("a", array(I8, 4), b"abcd")
        c = module.add_global("c", array(I8, 4), b"abzd")
        _m, b = ir.define(module, "main", I32, [])
        equal = b.call(libc.memcmp, b.gep(a, 0, 0), b.gep(a, 0, 0), 4)
        differ = b.call(libc.memcmp, b.gep(a, 0, 0), b.gep(c, 0, 0), 4)
        both = b.and_(b.icmp("eq", equal, 0), b.icmp("ne", differ, 0))
        b.halt(both)
        assert self._exec(module) == 1

    def test_strlen(self):
        module = ir.Module("m")
        libc = add_libc(module)
        s = module.add_global("s", array(I8, 8), b"hello\x00x")
        _m, b = ir.define(module, "main", I32, [])
        b.halt(b.call(libc.strlen, b.gep(s, 0, 0)))
        assert self._exec(module) == 5

    def test_memset_memcpy(self):
        module = ir.Module("m")
        libc = add_libc(module)
        src = module.add_global("src", array(I8, 8))
        dst = module.add_global("dst", array(I8, 8))
        _m, b = ir.define(module, "main", I32, [])
        b.call(libc.memset, b.gep(src, 0, 0), b.const(0x5A, I8), 8)
        b.call(libc.memcpy, b.gep(dst, 0, 0), b.gep(src, 0, 0), 8)
        b.halt(b.zext(b.load(b.gep(dst, 0, 7))))
        assert self._exec(module) == 0x5A

"""IR verifier.

Checks module well-formedness before the compiler pipeline runs:
terminators, operand typing, call signatures, and SSA dominance
(every use of an instruction result must be dominated by its
definition).  A malformed module raises :class:`VerificationError`
with every finding collected, not just the first.
"""

from __future__ import annotations

from .function import BasicBlock, Function
from .instructions import (
    Br,
    Call,
    ICall,
    Instruction,
    Ret,
    Store,
)
from .module import Module
from .types import FunctionType, IntType, PointerType, VoidType
from .values import Constant, ConstantNull, ConstantPointer, GlobalVariable, Parameter, Value


class VerificationError(Exception):
    """Raised when a module fails verification; carries all findings."""

    def __init__(self, errors: list[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


def verify_module(module: Module) -> None:
    """Verify every defined function in ``module``; raise on failure."""
    errors: list[str] = []
    for func in module.iter_functions():
        if func.is_declaration:
            continue
        errors.extend(_verify_function(func))
    if errors:
        raise VerificationError(errors)


def _verify_function(func: Function) -> list[str]:
    errors: list[str] = []
    where = f"@{func.name}"

    if not func.blocks:
        return [f"{where}: defined function has no blocks"]

    for block in func.blocks:
        if block.terminator is None:
            errors.append(f"{where}:{block.name}: missing terminator")
        for i, inst in enumerate(block.instructions[:-1]):
            if inst.is_terminator:
                errors.append(
                    f"{where}:{block.name}: terminator at position {i} "
                    f"is not last"
                )

    errors.extend(_verify_types(func, where))
    errors.extend(_verify_dominance(func, where))
    return errors


def _verify_types(func: Function, where: str) -> list[str]:
    errors = []
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store):
                ptr_t = inst.pointer.type
                if not isinstance(ptr_t, PointerType):
                    errors.append(f"{where}: store through non-pointer")
                elif ptr_t.pointee.is_scalar and inst.value.type != ptr_t.pointee:
                    errors.append(
                        f"{where}:{block.name}: store type mismatch "
                        f"{inst.value.type} -> {ptr_t.pointee}"
                    )
            elif isinstance(inst, Call):
                ftype: FunctionType = inst.callee.ftype
                if not ftype.variadic and len(inst.operands) != len(ftype.params):
                    errors.append(
                        f"{where}: call to @{inst.callee.name} with "
                        f"{len(inst.operands)} args, expected {len(ftype.params)}"
                    )
                for arg, formal in zip(inst.operands, ftype.params):
                    if arg.type != formal and not _compatible(arg.type, formal):
                        errors.append(
                            f"{where}: call @{inst.callee.name} arg type "
                            f"{arg.type} != {formal}"
                        )
            elif isinstance(inst, ICall):
                if not isinstance(inst.target.type, (PointerType, IntType)):
                    errors.append(f"{where}: icall through non-pointer/int value")
            elif isinstance(inst, Br):
                if not isinstance(inst.operands[0].type, IntType):
                    errors.append(f"{where}: branch condition is not an integer")
            elif isinstance(inst, Ret):
                ret_t = func.return_type
                if inst.value is None:
                    if not isinstance(ret_t, VoidType):
                        errors.append(f"{where}: ret void from non-void function")
                elif isinstance(ret_t, VoidType):
                    errors.append(f"{where}: ret value from void function")
                elif inst.value.type != ret_t and not _compatible(inst.value.type, ret_t):
                    errors.append(
                        f"{where}: ret type {inst.value.type} != {ret_t}"
                    )
    return errors


def _compatible(actual, formal) -> bool:
    """Pointer-to-pointer passing is permitted (C-style decay/casting)."""
    return isinstance(actual, PointerType) and isinstance(formal, PointerType)


def _verify_dominance(func: Function, where: str) -> list[str]:
    errors = []
    reachable = _reachable_blocks(func)
    idom = _immediate_dominators(func, reachable)

    order = {b: i for i, b in enumerate(func.blocks)}
    positions: dict[Instruction, tuple[BasicBlock, int]] = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = (block, i)

    def dominates(def_pos: tuple[BasicBlock, int], use_pos: tuple[BasicBlock, int]) -> bool:
        dblock, dindex = def_pos
        ublock, uindex = use_pos
        if dblock is ublock:
            return dindex < uindex
        node = ublock
        while node is not None and node is not dblock:
            node = idom.get(node)
        return node is dblock

    for block in func.blocks:
        if block not in reachable:
            continue
        for i, inst in enumerate(block.instructions):
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if op not in positions:
                        errors.append(
                            f"{where}:{block.name}: operand from another function"
                        )
                    elif not dominates(positions[op], (block, i)):
                        errors.append(
                            f"{where}:{block.name}: use of {op.short()} "
                            f"not dominated by its definition"
                        )
                elif not isinstance(
                    op,
                    (Constant, ConstantPointer, ConstantNull, GlobalVariable,
                     Parameter, Function, Value),
                ):
                    errors.append(f"{where}: invalid operand {op!r}")
                if isinstance(op, Parameter) and op not in func.params:
                    errors.append(
                        f"{where}:{block.name}: parameter of another function"
                    )
    return errors


def _reachable_blocks(func: Function) -> set[BasicBlock]:
    seen: set[BasicBlock] = set()
    stack = [func.entry_block]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors)
    return seen


def _immediate_dominators(
    func: Function, reachable: set[BasicBlock]
) -> dict[BasicBlock, BasicBlock]:
    """Cooper-Harvey-Kennedy iterative dominator computation."""
    entry = func.entry_block
    # Reverse postorder over reachable blocks.
    postorder: list[BasicBlock] = []
    visited: set[BasicBlock] = set()

    def dfs(block: BasicBlock) -> None:
        visited.add(block)
        for succ in block.successors:
            if succ not in visited:
                dfs(succ)
        postorder.append(block)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        dfs(entry)
    finally:
        sys.setrecursionlimit(old_limit)

    rpo = list(reversed(postorder))
    rpo_index = {b: i for i, b in enumerate(rpo)}
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in rpo}
    for block in rpo:
        for succ in block.successors:
            if succ in rpo_index:
                preds[succ].append(block)

    idom: dict[BasicBlock, BasicBlock] = {entry: entry}
    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            candidates = [p for p in preds[block] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = _intersect(pred, new_idom, idom, rpo_index)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    idom[entry] = None  # type: ignore[assignment]
    return idom


def _intersect(a: BasicBlock, b: BasicBlock, idom, rpo_index) -> BasicBlock:
    while a is not b:
        while rpo_index[a] > rpo_index[b]:
            a = idom[a]
        while rpo_index[b] > rpo_index[a]:
            b = idom[b]
    return a

"""Per-function cycle profiler.

Attributes simulated DWT cycles to functions using the interpreter's
enter/exit callbacks — the tool a developer reaches for when choosing
operation entry points ("which tasks are heavy?") or when chasing a
regression in the monitor's switch cost.

Self cycles: spent inside the function's own instructions.
Total cycles: self + everything it called (inclusive time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..image.layout import Image
from ..interp.hooks import RuntimeHooks
from ..interp.interpreter import Interpreter
from ..ir.function import Function
from .report import render_table


@dataclass
class FunctionProfile:
    name: str
    calls: int = 0
    self_cycles: int = 0
    total_cycles: int = 0


@dataclass
class Profile:
    """The finished profile: per-function rows + run totals."""

    functions: dict[str, FunctionProfile] = field(default_factory=dict)
    total_cycles: int = 0
    halt_code: int = 0

    #: Sort keys ``top`` accepts — the numeric FunctionProfile fields.
    SORT_KEYS = ("calls", "self_cycles", "total_cycles")

    def top(self, count: int = 10, by: str = "self_cycles"
            ) -> list[FunctionProfile]:
        if by not in self.SORT_KEYS:
            raise ValueError(
                f"unknown profile sort key {by!r}: expected one of "
                f"{', '.join(self.SORT_KEYS)}")
        # Ties (e.g. two leaf tasks with identical cost) break on the
        # function name, so the ordering is deterministic.
        return sorted(self.functions.values(),
                      key=lambda p: (-getattr(p, by), p.name))[:count]

    def render(self, count: int = 15) -> str:
        rows = []
        for entry in self.top(count):
            share = (100.0 * entry.self_cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            rows.append((entry.name, entry.calls, entry.self_cycles,
                         entry.total_cycles, f"{share:.1f}"))
        return render_table(
            ["Function", "Calls", "Self cycles", "Total cycles", "Self %"],
            rows, title=f"Cycle profile ({self.total_cycles} cycles)")


class CycleProfiler:
    """Attach to an interpreter before running to collect a profile."""

    def __init__(self, machine):
        self.machine = machine
        self.profile = Profile()
        # Stack of (function name, cycles at entry, callee cycles so far).
        self._stack: list[list] = []
        self._last_cycles = 0

    def install(self, interp: Interpreter) -> None:
        interp.on_function_enter = self._on_enter
        interp.on_function_exit = self._on_exit

    def _account_running(self) -> None:
        now = self.machine.cycles
        if self._stack:
            self._stack[-1][2] += now - self._last_cycles
        self._last_cycles = now

    def _on_enter(self, func: Function) -> None:
        self._account_running()
        self._stack.append([func.name, self.machine.cycles, 0])

    def _on_exit(self, func: Function) -> None:
        self._account_running()
        name, entered, self_cycles = self._stack.pop()
        total = self.machine.cycles - entered
        record = self.profile.functions.setdefault(
            name, FunctionProfile(name=name))
        record.calls += 1
        record.self_cycles += self_cycles
        record.total_cycles += total
        # The caller's "running" window resumes now; its own self time
        # continues accumulating from here.

    def finish(self, halt_code: int) -> Profile:
        # Unwind anything still on the stack (main, the halting frame).
        while self._stack:
            self._on_exit_fake()
        self.profile.total_cycles = self.machine.cycles
        self.profile.halt_code = halt_code
        return self.profile

    def _on_exit_fake(self) -> None:
        self._account_running()
        name, entered, self_cycles = self._stack.pop()
        record = self.profile.functions.setdefault(
            name, FunctionProfile(name=name))
        record.calls += 1
        record.self_cycles += self_cycles
        record.total_cycles += self.machine.cycles - entered


def profile_image(image: Image, *, hooks: Optional[RuntimeHooks] = None,
                  setup=None, entry: str = "main",
                  max_instructions: int = 100_000_000) -> Profile:
    """Run ``image`` under the profiler and return the profile."""
    from ..hw.machine import Machine
    from ..image.linker import OpecImage
    from ..runtime.monitor import OpecMonitor

    machine = Machine(image.board)
    if setup is not None:
        setup(machine)
    image.initialize_memory(machine)
    if hooks is None and isinstance(image, OpecImage):
        hooks = OpecMonitor(machine, image)
    interp = Interpreter(machine, image, hooks,
                         max_instructions=max_instructions)
    profiler = CycleProfiler(machine)
    profiler.install(interp)
    code = interp.run(entry=entry)
    return profiler.finish(code)

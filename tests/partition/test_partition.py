"""Unit tests for operation partitioning and policy generation."""

import pytest

import repro.ir as ir
from repro.analysis import ResourceAnalysis, build_call_graph
from repro.hw import Peripheral, stm32f4_discovery
from repro.ir import I32, VOID, FunctionType
from repro.partition import (
    OperationSpec,
    PartitionError,
    build_policy,
    merge_peripheral_windows,
    partition_operations,
)

from ..conftest import MINI_SPECS, build_mini_module


def _partition(module, specs):
    board = stm32f4_discovery()
    graph = build_call_graph(module)
    resources = ResourceAnalysis(module, board, graph.andersen)
    return partition_operations(module, graph, specs, resources)


class TestPartition:
    def test_main_is_default_operation_first(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        assert ops[0].is_default
        assert ops[0].entry.name == "main"
        assert len(ops) == 3

    def test_entries_excluded_from_other_operations(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        main_op = ops[0]
        names = {f.name for f in main_op.functions}
        assert names == {"main"}  # task subtrees belong to their ops

    def test_shared_functions_in_both_operations(self):
        module = ir.Module("m")
        helper, hb = ir.define(module, "helper", VOID, [])
        hb.ret_void()
        for name in ("task_a", "task_b"):
            _t, tb = ir.define(module, name, VOID, [])
            tb.call(helper)
            tb.ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.call(module.get_function("task_a"))
        mb.call(module.get_function("task_b"))
        mb.halt(0)
        ops = _partition(module, [OperationSpec("task_a"),
                                  OperationSpec("task_b")])
        by_name = {op.name: op for op in ops}
        assert helper in by_name["task_a"].functions
        assert helper in by_name["task_b"].functions

    def test_recursion_grouped_into_one_operation(self):
        module = ir.Module("m")
        rec, rb = ir.define(module, "rec", I32, [I32])
        n = rec.params[0]
        with rb.if_then(rb.icmp("ugt", n, 0)):
            rb.ret(rb.call(rec, rb.sub(n, 1)))
        rb.ret(0)
        _m, mb = ir.define(module, "main", I32, [])
        mb.halt(mb.call(rec, 3))
        ops = _partition(module, [OperationSpec("rec")])
        rec_op = next(op for op in ops if op.name == "rec")
        assert rec_op.functions == {rec}

    def test_variadic_entry_rejected(self):
        module = ir.Module("m")
        va = ir.Function("va", FunctionType(VOID, [I32], variadic=True))
        module.add_function(va)
        ir.IRBuilder(va).ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.halt(0)
        with pytest.raises(PartitionError, match="variable-length"):
            _partition(module, [OperationSpec("va")])

    def test_interrupt_handler_entry_rejected(self):
        module = ir.Module("m")
        irq, ib = ir.define(module, "USART2_IRQHandler", VOID, [],
                            is_interrupt_handler=True)
        ib.ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.halt(0)
        with pytest.raises(PartitionError, match="interrupt"):
            _partition(module, [OperationSpec("USART2_IRQHandler")])

    def test_main_cannot_be_listed_entry(self, mini_module):
        with pytest.raises(PartitionError, match="default"):
            _partition(mini_module, [OperationSpec("main")])

    def test_duplicate_entries_rejected(self, mini_module):
        with pytest.raises(PartitionError, match="duplicate"):
            _partition(mini_module, [OperationSpec("task_a"),
                                     OperationSpec("task_a")])

    def test_stack_info_carried_onto_operation(self):
        module = build_mini_module()
        ops = _partition(module, [
            OperationSpec("task_a", stack_info={0: 16}),
            OperationSpec("task_b"),
        ])
        by_name = {op.name: op for op in ops}
        assert by_name["task_a"].stack_info == {0: 16}


class TestPeripheralWindows:
    def _p(self, name, base, size=0x400):
        return Peripheral(name, base, size)

    def test_adjacent_merged(self):
        a = self._p("GPIOA", 0x40020000)
        b = self._p("GPIOB", 0x40020400)
        windows = merge_peripheral_windows([b, a])
        assert len(windows) == 1
        assert windows[0].base == 0x40020000
        assert windows[0].size == 0x800
        assert windows[0].peripherals == (a, b)

    def test_gap_not_merged(self):
        a = self._p("TIM2", 0x40000000)
        b = self._p("RCC", 0x40023800)
        windows = merge_peripheral_windows([a, b])
        assert len(windows) == 2

    def test_empty(self):
        assert merge_peripheral_windows([]) == []


class TestPolicy:
    def test_classification(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        policy = build_policy(mini_module, ops)
        by_name = {g.name: policy.placements[g]
                   for g in mini_module.writable_globals()}
        assert by_name["counter"].is_external       # main, task_a, task_b
        assert by_name["secret"].is_internal        # task_a only
        assert by_name["blob"].is_internal          # task_b only

    def test_section_vars_internal_plus_shadows(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        policy = build_policy(mini_module, ops)
        task_a = policy.operation_by_entry("task_a")
        names = {g.name for g in policy.section_vars(task_a)}
        assert names == {"secret", "counter"}

    def test_section_size_word_padded(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        policy = build_policy(mini_module, ops)
        task_b = policy.operation_by_entry("task_b")
        # blob (32) + counter shadow (4)
        assert policy.section_size(task_b) == 36

    def test_default_operation_accessor(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        policy = build_policy(mini_module, ops)
        assert policy.default_operation.entry.name == "main"

    def test_unknown_entry_raises(self, mini_module):
        ops = _partition(mini_module, MINI_SPECS)
        policy = build_policy(mini_module, ops)
        with pytest.raises(KeyError):
            policy.operation_by_entry("nope")

    def test_public_only_vars(self):
        module = build_mini_module()
        module.add_global("orphan", I32, 0)
        ops = _partition(module, MINI_SPECS)
        policy = build_policy(module, ops)
        assert {g.name for g in policy.public_only_vars()} == {"orphan"}

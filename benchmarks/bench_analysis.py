#!/usr/bin/env python
"""Compiler-side performance regression harness.

The compile-time counterpart of ``bench_regress.py``: snapshots the
OPEC-Compiler analysis pipeline into ``BENCH_analysis.json`` so the
compile-side perf trajectory is tracked like the interpreter's.

Per application (paper profile — builds only, nothing is simulated):

* Andersen solver cost counters — worklist ``iterations``,
  ``propagated_objects``, ``peak_delta``, final ``constraints`` sizes —
  all *deterministic*: they are part of the determinism contract and
  diffed by ``tools/check_determinism.py``;
* derived call-graph facts (icall counts and how each was resolved,
  operation/function counts) — deterministic too;
* the per-stage wall-clock breakdown from ``BuildArtifacts.stage_times``
  and the Andersen solve time — host measurements, masked from the
  determinism diff.

The ``harness`` section times one full evaluation-row pass
(``compute_all_rows``) under the quick profile, serially and — when
``REPRO_JOBS`` > 1 — through the process pool, recording the speedup.
Skip it with ``--no-harness`` (the determinism checker does: the whole
section is host wall-clock).

Usage:  PYTHONPATH=src python benchmarks/bench_analysis.py [out.json] [--no-harness]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.eval.workloads import APP_NAMES, build_app, repro_jobs  # noqa: E402
from repro.pipeline import build_opec  # noqa: E402


def bench_app(name: str) -> dict:
    app = build_app(name, profile="paper")
    artifacts = build_opec(app.module, app.board, app.specs)
    andersen = artifacts.andersen
    graph = artifacts.callgraph
    return {
        "functions": len(app.module.functions),
        "operations": len(artifacts.operations),
        "andersen": {
            "iterations": andersen.iterations,
            "propagated_objects": andersen.propagated_objects,
            "peak_delta": andersen.peak_delta,
            "constraints": dict(andersen.constraint_counts),
            "solve_wall_s": round(andersen.solve_time, 4),
        },
        "icalls": {
            "total": graph.icall_count(),
            "svf": graph.resolved_by("svf"),
            "type": graph.resolved_by("type"),
        },
        "stages_wall_ms": {
            stage: round(seconds * 1000, 2)
            for stage, seconds in artifacts.stage_times.items()
        },
    }


def _timed_rows(jobs: int) -> float:
    """Time one full compute_all_rows pass in a fresh subprocess (cold
    caches — the number a first-time ``report_all`` user sees)."""
    env = dict(os.environ)
    env["REPRO_PROFILE"] = "quick"
    env["REPRO_JOBS"] = str(jobs)
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c",
         "from repro.eval.workloads import compute_all_rows; compute_all_rows()"],
        cwd=REPO, env=env, check=True,
    )
    return time.perf_counter() - start


def bench_harness() -> dict:
    jobs = repro_jobs()
    serial = _timed_rows(1)
    report = {
        "profile": "quick",
        "jobs": jobs,
        "serial_rows_wall_s": round(serial, 2),
    }
    if jobs > 1:
        parallel = _timed_rows(jobs)
        report["parallel_rows_wall_s"] = round(parallel, 2)
        report["speedup"] = round(serial / parallel, 2)
    return report


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--no-harness"]
    run_harness = "--no-harness" not in sys.argv[1:]
    out = Path(args[0]) if args else REPO / "BENCH_analysis.json"
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": {name: bench_app(name) for name in APP_NAMES},
    }
    if run_harness:
        report["harness"] = bench_harness()
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

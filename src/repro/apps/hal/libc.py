"""Freestanding libc subset authored in IR ("string.c").

The usual suspects every firmware links: ``memcpy``, ``memset``,
``memcmp``, ``strlen``, plus word-wise copies the drivers use.  These
are deliberately byte-loop implementations — the same shape newlib's
nano variants have — so they exercise real load/store traffic under the
MPU.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...ir import I8, I32, Module, VOID, define, ptr

FILE = "string.c"


def add_libc(module: Module) -> SimpleNamespace:
    """Register the libc subset into ``module``; returns the handles."""
    p8 = ptr(I8)

    memcpy, b = define(module, "memcpy", VOID, [p8, p8, I32], source_file=FILE)
    dst, src, count = memcpy.params
    with b.for_range(0, count) as load_i:
        i = load_i()
        byte = b.load(b.gep(src, i))
        b.store(byte, b.gep(dst, i))
    b.ret_void()

    memset, b = define(module, "memset", VOID, [p8, I8, I32], source_file=FILE)
    dst, value, count = memset.params
    with b.for_range(0, count) as load_i:
        b.store(value, b.gep(dst, load_i()))
    b.ret_void()

    memcmp, b = define(module, "memcmp", I32, [p8, p8, I32], source_file=FILE)
    lhs, rhs, count = memcmp.params
    result = b.alloca(I32, name="result")
    b.store(0, result)
    with b.for_range(0, count) as load_i:
        i = load_i()
        a = b.zext(b.load(b.gep(lhs, i)))
        c = b.zext(b.load(b.gep(rhs, i)))
        diff = b.icmp("ne", a, c)
        with b.if_then(diff):
            b.store(b.sub(a, c), result)
            b.ret(b.load(result))
    b.ret(0)

    strlen, b = define(module, "strlen", I32, [p8], source_file=FILE)
    (text,) = strlen.params
    length = b.alloca(I32, name="len")
    b.store(0, length)
    with b.while_loop(
        lambda: b.icmp("ne", b.zext(b.load(b.gep(text, b.load(length)))), 0)
    ):
        b.store(b.add(b.load(length), 1), length)
    b.ret(b.load(length))

    word_copy, b = define(module, "word_copy", VOID,
                          [ptr(I32), ptr(I32), I32], source_file=FILE)
    dst, src, words = word_copy.params
    with b.for_range(0, words) as load_i:
        i = load_i()
        b.store(b.load(b.gep(src, i)), b.gep(dst, i))
    b.ret_void()

    word_fill, b = define(module, "word_fill", VOID,
                          [ptr(I32), I32, I32], source_file=FILE)
    dst, value, words = word_fill.params
    with b.for_range(0, words) as load_i:
        b.store(value, b.gep(dst, load_i()))
    b.ret_void()

    return SimpleNamespace(
        memcpy=memcpy, memset=memset, memcmp=memcmp, strlen=strlen,
        word_copy=word_copy, word_fill=word_fill,
    )

"""Benchmark + regeneration of Table 2 (OPEC vs ACES, §6.4).

Every cell is measured: each of the five shared applications is built
and run under OPEC and the three ACES strategies.  The timed quantity
is the ACES2 (finest-grained, most switches) run per application.
"""

from __future__ import annotations

import pytest

from repro.apps import ACES_APPS
from repro.eval import table2
from repro.eval.workloads import aces_artifacts, build_app, run_build
from repro.pipeline import run_image


@pytest.mark.parametrize("app_name", ACES_APPS)
def test_table2_aces2_run(benchmark, app_name):
    app = build_app(app_name)
    image = aces_artifacts(app_name, "ACES2").image

    def run_aces():
        return run_image(image, setup=app.setup,
                         max_instructions=app.max_instructions)

    result = benchmark.pedantic(run_aces, rounds=1, iterations=1)
    app.verify_run(result.machine, result.halt_code)


def test_print_table2(benchmark):
    rows = benchmark.pedantic(table2.compute_table, rounds=1, iterations=1)
    print()
    print(table2.render(rows))
    by_key = {(r.app, r.policy): r for r in rows}
    for app_name in ACES_APPS:
        opec = by_key[(app_name, "OPEC")]
        # C-claims of the paper: OPEC never runs application code
        # privileged; ACES lifts core-peripheral compartments.
        assert opec.privileged_app_pct == 0.0
        assert any(
            by_key[(app_name, s)].privileged_app_pct > 0
            for s in ("ACES1", "ACES2", "ACES3")
        )
        # OPEC pays more SRAM than ACES (shadowing), as in the paper.
        assert opec.sram_pct >= by_key[(app_name, "ACES2")].sram_pct

"""Differential property tests: fused loop traces vs both lower tiers.

The trace fuser batches whole pure runs under one cycle charge and one
budget check per iteration, so its bit-identity claim is sharper than
the block compiler's: random loop bodies probe the batched charges,
the sync points around loads/stores, the per-iteration IRQ/SysTick
guard, and the KeyError rollback — against per-block execution *and*
the single-step reference, with the hot threshold forced low so every
random loop actually fuses.  The OPEC end-to-end check quantifies the
claim over all three enforcement backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro import run_image
from repro.hw import Machine, stm32f4_discovery
from repro.hw.backend import KNOWN_BACKENDS
from repro.hw.exceptions import MachineError
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I8, I32, VOID

WORD = 0xFFFFFFFF
u32 = st.integers(min_value=0, max_value=WORD)

BINOPS = list(ir.BINARY_OPS)
PREDS = list(ir.ICMP_PREDICATES)

op_steps = st.one_of(
    st.tuples(st.just("binop"), st.sampled_from(BINOPS)),
    st.tuples(st.just("icmp"), st.sampled_from(PREDS)),
    st.tuples(st.just("select"), st.sampled_from(PREDS)),
    st.tuples(st.just("truncext"), st.just("")),
)

#: (block_compile, trace_fuse) per tier.
MODES = (("fused", True, True), ("blocks", True, False),
         ("step", False, False))


@pytest.fixture(autouse=True)
def hot(monkeypatch):
    """Every random loop must cross the hot threshold quickly."""
    monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "2")


@st.composite
def programs(draw):
    return {
        "seeds": draw(st.lists(u32, min_size=8, max_size=8)),
        "steps": draw(st.lists(op_steps, min_size=1, max_size=6)),
        "iterations": draw(st.integers(min_value=3, max_value=25)),
        "start": draw(u32),
        # 0 = SysTick disarmed; small reloads force mid-trace IRQs.
        "reload": draw(st.sampled_from([0, 0, 67, 131])),
        # None = clean halt; an in-loop faulting store otherwise — the
        # fuser's sync point must commit the pure run then fault.
        "probe": draw(st.sampled_from(
            [None, None, 0x60000000, 0x20000000])),
    }


def _build_module(spec) -> ir.Module:
    module = ir.Module("differential")
    ticks = module.add_global("ticks", I32, 0)
    if spec["reload"]:
        _h, hb = ir.define(module, "SysTick_Handler", VOID, [],
                           irq_number=15)
        hb.store(hb.add(hb.load(ticks), 1), ticks)
        hb.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    arr = b.alloca(I32, 8)
    for j, seed in enumerate(spec["seeds"]):
        b.store(seed, b.gep(arr, j))
    acc_slot = b.alloca(I32)
    b.store(spec["start"], acc_slot)
    if spec["reload"]:
        b.store(spec["reload"], b.mmio(0xE000E014))
        b.store(7, b.mmio(0xE000E010))
    with b.for_range(0, spec["iterations"]) as load_i:
        acc = b.load(acc_slot)
        cell = b.gep(arr, b.and_(acc, 7))
        value = b.load(cell)
        for kind, arg in spec["steps"]:
            if kind == "binop":
                acc = b.binop(arg, acc, value)
            elif kind == "icmp":
                acc = b.add(b.zext(b.icmp(arg, acc, value)), value)
            elif kind == "select":
                acc = b.select(b.icmp(arg, acc, load_i()), acc, value)
            else:
                acc = b.zext(b.trunc(acc, I8))
        b.store(acc, cell)
        b.store(acc, acc_slot)
        if spec["probe"] is not None:
            b.store(acc, b.mmio(spec["probe"]))
    b.halt(b.add(b.load(acc_slot), b.load(ticks)))
    return module


def _observe(module, block_compile, trace_fuse) -> dict:
    """One run's complete simulated observable state."""
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=200_000,
                         block_compile=block_compile,
                         trace_fuse=trace_fuse)
    try:
        outcome = ("halt", interp.run())
    except MachineError as error:
        outcome = (type(error).__name__, str(error))
    return {
        "outcome": outcome,
        "cycles": machine.cycles,
        "instructions": interp.instructions_executed,
        "stats": machine.stats.as_dict(),
        "sram": machine.read_bytes(machine.sram.base, machine.sram.size),
    }


@given(programs())
@settings(max_examples=40, deadline=None)
def test_fused_matches_blocks_and_singlestep(spec):
    module = _build_module(spec)
    observed = [_observe(module, bc, tf) for _name, bc, tf in MODES]
    assert observed[0] == observed[1] == observed[2]


def _observe_backend(image, app, backend, block_compile,
                     trace_fuse) -> dict:
    try:
        result = run_image(image, setup=app.setup,
                           max_instructions=app.max_instructions,
                           backend=backend, block_compile=block_compile,
                           trace_fuse=trace_fuse)
    except MachineError as error:
        return {"outcome": (type(error).__name__, str(error))}
    return {
        "outcome": ("halt", result.halt_code),
        "cycles": result.machine.cycles,
        "instructions": result.interpreter.instructions_executed,
        "stats": result.machine.stats.as_dict(),
        "switches": result.hooks.switch_count,
    }


def test_pinlock_opec_identical_on_every_backend():
    """End-to-end differential under real enforcement: operation
    switches, compiled SVC dispatch, MemManage retries, SysTick — the
    fused tier against both lower tiers, per backend."""
    from repro.eval.workloads import build_app, opec_artifacts

    app = build_app("PinLock", profile="quick")
    image = opec_artifacts("PinLock", profile="quick").image
    for backend in KNOWN_BACKENDS:
        observed = [_observe_backend(image, app, backend, bc, tf)
                    for _name, bc, tf in MODES]
        assert observed[0] == observed[1] == observed[2], backend

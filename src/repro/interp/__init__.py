"""IR interpreter running linked firmware images on the simulated machine."""

from .costs import (
    CORE_EMULATION_COST,
    DEFAULT_COST,
    DIV_COST,
    INSTRUCTION_COSTS,
    REGION_SWITCH_COST,
    SANITIZE_CHECK_COST,
    STACK_RELOCATE_WORD_COST,
    SWITCH_BASE_COST,
    SYNC_WORD_COST,
)
from .batch import BatchLane, BatchResult, BatchRunner, batch_lanes
from .blockcompile import (
    BLOCKCOMPILE_OFF_VALUES,
    BLOCKCOMPILE_ON_VALUES,
    block_compile_enabled,
    compile_block,
)
from .hooks import RuntimeHooks
from .interpreter import ExecutionLimitExceeded, Frame, Interpreter
from .tracefuse import (
    DEFAULT_TRACE_THRESHOLD,
    TRACEFUSE_OFF_VALUES,
    TRACEFUSE_ON_VALUES,
    compile_trace,
    trace_fuse_enabled,
    trace_threshold,
)

__all__ = [
    "CORE_EMULATION_COST", "DEFAULT_COST", "DIV_COST", "INSTRUCTION_COSTS",
    "REGION_SWITCH_COST", "SANITIZE_CHECK_COST", "STACK_RELOCATE_WORD_COST",
    "SWITCH_BASE_COST", "SYNC_WORD_COST",
    "BLOCKCOMPILE_OFF_VALUES", "BLOCKCOMPILE_ON_VALUES",
    "block_compile_enabled", "compile_block",
    "DEFAULT_TRACE_THRESHOLD", "TRACEFUSE_OFF_VALUES", "TRACEFUSE_ON_VALUES",
    "compile_trace", "trace_fuse_enabled", "trace_threshold",
    "BatchLane", "BatchResult", "BatchRunner", "batch_lanes",
    "RuntimeHooks", "ExecutionLimitExceeded", "Frame", "Interpreter",
]

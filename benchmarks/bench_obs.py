#!/usr/bin/env python
"""Observability overhead benchmark.

Emits ``BENCH_obs.json`` answering the two questions the flight
recorder's design hinges on:

* **disabled-mode cost** — with no recorder attached (the default),
  does the interpreter match the canonical ``bench_regress`` harness?
  The hot step loop contains no observability code and the emit guards
  sit on cold seams only, so the throughput ratio must stay within 5%.
  The ratio is the median of paired back-to-back trials (a single-shot
  reference made the gate pure noise: the recorded overhead once came
  out *negative*), and the gate is two-sided — a large ratio in either
  direction means the comparison is not measuring what it claims to.
* **enabled-mode cost** — what does attaching a
  :class:`~repro.obs.recorder.FlightRecorder` cost, both on a pure
  interpreter loop (vanilla throughput: almost no events) and on a
  switch-heavy OPEC workload (PinLock: every switch emits a span tree)?

Each mode reports best-of-N wall clock *and* the simulated quantities;
the simulated numbers are identical across modes by construction —
observability must never change what is charged.

Usage:  PYTHONPATH=src python benchmarks/bench_obs.py [out.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_regress import _throughput_module  # noqa: E402
from repro import build_opec, run_image  # noqa: E402
from repro.hw import Machine, stm32f4_discovery  # noqa: E402
from repro.image import build_vanilla_image  # noqa: E402
from repro.interp import Interpreter  # noqa: E402
from repro.obs import FlightRecorder  # noqa: E402

THRESHOLD_PCT = 5.0
TRIALS = 9


def _throughput_once(traced: bool) -> dict:
    """One timed run of the bench_regress vanilla loop, with/without a
    recorder."""
    board = stm32f4_discovery()
    image = build_vanilla_image(_throughput_module(), board)
    machine = Machine(board)
    if traced:
        machine.recorder = FlightRecorder()
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=10_000_000)
    start = time.perf_counter()
    interp.run()
    wall = time.perf_counter() - start
    return {
        "wall_clock_s": round(wall, 4),
        "instructions": interp.instructions_executed,
        "cycles": machine.cycles,
        "insts_per_s": round(interp.instructions_executed / wall),
        "events": machine.recorder.seq if machine.recorder else 0,
    }


def _best(previous: dict | None, run: dict) -> dict:
    if previous is None or run["wall_clock_s"] < previous["wall_clock_s"]:
        return run
    return previous


def bench_throughput(traced: bool) -> dict:
    best = None
    for _ in range(TRIALS):
        best = _best(best, _throughput_once(traced))
    return best


def bench_pinlock(traced: bool) -> dict:
    """PinLock under full OPEC enforcement, with/without a recorder."""
    from repro.apps import pinlock

    app = pinlock.build(rounds=2)
    artifacts = build_opec(app.module, app.board, app.specs)
    best = None
    for _ in range(TRIALS):
        recorder = FlightRecorder() if traced else None
        start = time.perf_counter()
        result = run_image(artifacts.image, setup=app.setup,
                           max_instructions=app.max_instructions,
                           recorder=recorder)
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, result, recorder)
    wall, result, recorder = best
    app.verify_run(result.machine, result.halt_code)
    return {
        "wall_clock_s": round(wall, 4),
        "halt_code": result.halt_code,
        "cycles": result.machine.cycles,
        "switches": result.hooks.switch_count,
        "events": recorder.seq if recorder else 0,
    }


def _overhead_pct(disabled_s: float, reference_s: float) -> float:
    return round((disabled_s / reference_s - 1) * 100, 2)


def _disabled_vs_reference() -> tuple[dict, dict, float]:
    """Measure the disabled-mode overhead as the *median of paired
    per-trial ratios*: each trial runs the canonical-harness reference
    and this script's disabled-mode harness back to back, so host
    drift (frequency scaling, noisy neighbours) is common-mode within
    a pair and cancels in the ratio, and the median shrugs off a noise
    burst hitting any one pair.  The previous shapes both failed: a
    single-shot reference against best-of-N systematically reported
    *negative* overhead, and best-of-N on both sides still swung past
    the 5 % gate because sequential trial blocks let drift land
    entirely on one side.  The compiled (block-compile on) harness is
    the reference — the default execution tier this script's own runs
    use — and one single-step run pins that it charges identical
    simulated quantities."""
    import statistics

    from bench_regress import _check_identical, _run_throughput

    _run_throughput(block_compile=True)       # warm-up: compile once
    _throughput_once(traced=False)
    best_ref = best_off = None
    ratios = []
    for _ in range(TRIALS):
        ref = _run_throughput(block_compile=True)
        off = _throughput_once(traced=False)
        ratios.append(off["wall_clock_s"] / ref["wall_clock_s"])
        best_ref = _best(best_ref, ref)
        best_off = _best(best_off, off)
    singlestep = _run_throughput(block_compile=False)
    _check_identical("vanilla_throughput", best_ref, singlestep)
    overhead_pct = round((statistics.median(ratios) - 1) * 100, 2)
    return best_ref, best_off, overhead_pct


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_obs.json"

    reference, throughput_off, disabled_overhead_pct = \
        _disabled_vs_reference()
    throughput_on = bench_throughput(traced=True)
    pinlock_off = bench_pinlock(traced=False)
    pinlock_on = bench_pinlock(traced=True)
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "threshold_pct": THRESHOLD_PCT,
        "reference": {
            "harness": "bench_regress.bench_vanilla_throughput",
            "wall_clock_s": reference["wall_clock_s"],
            "insts_per_s": reference["insts_per_s"],
        },
        "workloads": {
            "vanilla_throughput": {
                "disabled": throughput_off,
                "enabled": throughput_on,
                "enabled_overhead_pct": _overhead_pct(
                    throughput_on["wall_clock_s"],
                    throughput_off["wall_clock_s"]),
            },
            "pinlock_opec": {
                "disabled": pinlock_off,
                "enabled": pinlock_on,
                "enabled_overhead_pct": _overhead_pct(
                    pinlock_on["wall_clock_s"],
                    pinlock_off["wall_clock_s"]),
            },
        },
        "disabled_overhead_pct": disabled_overhead_pct,
        # Two-sided: a large negative "overhead" is a broken
        # comparison, not a win.
        "pass": abs(disabled_overhead_pct) < THRESHOLD_PCT,
    }
    # Observability must not change simulated quantities.
    for pair in (("vanilla_throughput", "cycles"), ("pinlock_opec", "cycles")):
        workload = report["workloads"][pair[0]]
        if workload["disabled"][pair[1]] != workload["enabled"][pair[1]]:
            report["pass"] = False
            report.setdefault("failures", []).append(
                f"{pair[0]}: simulated {pair[1]} changed with tracing on")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())

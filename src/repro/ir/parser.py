"""Parser for the OPEC-IR assembly format.

Parses exactly what :func:`repro.ir.printer.print_module` emits (plus
whitespace/comment freedom), giving the IR a durable on-disk form:

    module = parse_module(text)

Round-trip guarantee (tested): ``print_module(parse_module(text)) ==
text`` for printer-produced text, and the parsed module executes
identically to the original.
"""

from __future__ import annotations

import re
from typing import Optional

from .function import BasicBlock, Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
    BINARY_OPS,
    CAST_KINDS,
    ICMP_PREDICATES,
)
from .module import Module
from .types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .values import (
    Constant,
    ConstantNull,
    ConstantPointer,
    Value,
)


class ParseError(Exception):
    """Malformed OPEC-IR text; message carries the line number."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


_GLOBAL_RE = re.compile(
    r"@(?P<name>[\w.$]+)\s*=\s*(?P<kind>global|constant)\s+(?P<rest>.*)$"
)
_STRUCT_RE = re.compile(r"%(?P<name>[\w.$]+)\s*=\s*type\s*\{(?P<body>.*)\}$")
_DEFINE_RE = re.compile(
    r"(?P<decl>define|declare)\s+(?P<rest>.*)$"
)
_LABEL_RE = re.compile(r"(?P<name>[\w.$]+):$")


class _Cursor:
    """A character cursor over one line (types and operands)."""

    def __init__(self, text: str, line_no: int):
        self.text = text
        self.pos = 0
        self.line_no = line_no

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos:self.pos + 1]

    def startswith(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise ParseError(
                f"expected {token!r} at ...{self.text[self.pos:][:30]!r}",
                self.line_no,
            )

    def accept(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def word(self) -> str:
        self.skip_ws()
        match = re.match(r"[\w.$#-]+", self.text[self.pos:])
        if not match:
            raise ParseError(
                f"expected a word at ...{self.text[self.pos:][:30]!r}",
                self.line_no,
            )
        self.pos += match.end()
        return match.group(0)

    def done(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


class Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.module: Optional[Module] = None
        self.structs: dict[str, StructType] = {}

    # -- types ---------------------------------------------------------

    def parse_type(self, cur: _Cursor) -> Type:
        base = self._parse_base_type(cur)
        # Suffixes: pointers, then a function-type parameter list.
        while True:
            if cur.accept("*"):
                base = PointerType(base)
            elif cur.startswith("("):
                base = self._parse_function_type(cur, base)
            else:
                return base

    def _parse_base_type(self, cur: _Cursor) -> Type:
        if cur.accept("["):
            count = int(cur.word())
            cur.expect("x")
            element = self.parse_type(cur)
            cur.expect("]")
            return ArrayType(element, count)
        if cur.accept("%"):
            name = cur.word()
            if name not in self.structs:
                raise ParseError(f"unknown struct %{name}", cur.line_no)
            return self.structs[name]
        word = cur.word()
        if word == "void":
            return VOID
        if word.startswith("i") and word[1:].isdigit():
            return IntType(int(word[1:]))
        raise ParseError(f"unknown type {word!r}", cur.line_no)

    def _parse_function_type(self, cur: _Cursor, ret: Type) -> FunctionType:
        cur.expect("(")
        params: list[Type] = []
        variadic = False
        if not cur.accept(")"):
            while True:
                if cur.accept("..."):
                    variadic = True
                else:
                    params.append(self.parse_type(cur))
                if cur.accept(")"):
                    break
                cur.expect(",")
        return FunctionType(ret, params, variadic)

    # -- module-level ------------------------------------------------------

    def parse(self) -> Module:
        name = "module"
        bodies: list[tuple[int, Function, list[str]]] = []
        i = 0
        while i < len(self.lines):
            raw = self.lines[i]
            line = raw.split(";", 1)[0].strip()
            comment = raw.strip()
            if comment.startswith("; module "):
                name = comment[len("; module "):].strip()
            if self.module is None:
                self.module = Module(name)
            if not line:
                i += 1
                continue

            struct_m = _STRUCT_RE.match(line)
            if struct_m:
                self._parse_struct(struct_m, i + 1)
                i += 1
                continue
            global_m = _GLOBAL_RE.match(line)
            if global_m:
                self._parse_global(global_m, i + 1)
                i += 1
                continue
            define_m = _DEFINE_RE.match(line)
            if define_m:
                func, is_def = self._parse_signature(
                    define_m.group("rest"), i + 1,
                    declaration=define_m.group("decl") == "declare",
                )
                if not is_def:
                    i += 1
                    continue
                body: list[str] = []
                i += 1
                while i < len(self.lines):
                    body_line = self.lines[i].split(";", 1)[0].strip()
                    if body_line == "}":
                        break
                    if body_line:
                        body.append(self.lines[i])
                    i += 1
                else:
                    raise ParseError(f"unterminated function @{func.name}",
                                     len(self.lines))
                bodies.append((i, func, body))
                i += 1
                continue
            raise ParseError(f"unrecognised line: {line!r}", i + 1)

        if self.module is None:
            self.module = Module(name)
        for _end, func, body in bodies:
            self._parse_body(func, body)
        return self.module

    def _parse_struct(self, match: re.Match, line_no: int) -> None:
        fields: list[tuple[str, Type]] = []
        body = match.group("body").strip()
        if body:
            cur = _Cursor(body, line_no)
            while True:
                ftype = self.parse_type(cur)
                fname = cur.word()
                fields.append((fname, ftype))
                if not cur.accept(","):
                    break
        struct = StructType(match.group("name"), fields)
        self.structs[struct.name] = struct
        self.module.add_struct(struct)

    def _parse_global(self, match: re.Match, line_no: int) -> None:
        cur = _Cursor(match.group("rest"), line_no)
        value_type = self.parse_type(cur)
        initializer = self._parse_initializer(cur, value_type)
        attrs = self._parse_attrs(cur)
        self.module.add_global(
            match.group("name"), value_type, initializer,
            is_const=match.group("kind") == "constant",
            source_file=attrs.get("file", ""),
            sanitize_range=attrs.get("sanitize"),
        )

    def _parse_initializer(self, cur: _Cursor, value_type: Type):
        if cur.accept("zeroinitializer"):
            return None
        if cur.startswith('c"'):
            cur.expect('c"')
            end = cur.text.index('"', cur.pos)
            blob = bytes.fromhex(cur.text[cur.pos:end])
            cur.pos = end + 1
            return blob
        word = cur.word()
        value = int(word, 0)
        if value_type.is_scalar:
            return value
        raise ParseError("integer initializer for aggregate", cur.line_no)

    def _parse_attrs(self, cur: _Cursor) -> dict:
        attrs: dict = {}
        while cur.accept(","):
            key = cur.word()
            if key == "file":
                cur.expect('"')
                end = cur.text.index('"', cur.pos)
                attrs["file"] = cur.text[cur.pos:end]
                cur.pos = end + 1
            elif key == "sanitize":
                attrs["sanitize"] = (int(cur.word(), 0), int(cur.word(), 0))
            else:
                raise ParseError(f"unknown attribute {key!r}", cur.line_no)
        return attrs

    def _parse_signature(self, rest: str, line_no: int,
                         declaration: bool) -> tuple[Function, bool]:
        cur = _Cursor(rest, line_no)
        ret = self.parse_type(cur)
        cur.expect("@")
        name = cur.word()
        cur.expect("(")
        params: list[Type] = []
        if not cur.accept(")"):
            while True:
                params.append(self.parse_type(cur))
                cur.expect("%")
                cur.word()  # the printed parameter name (positional)
                if cur.accept(")"):
                    break
                cur.expect(",")
        attrs: dict = {}
        while not cur.done():
            if cur.accept("{"):
                break
            key = cur.word()
            if key == "file":
                cur.expect('"')
                end = cur.text.index('"', cur.pos)
                attrs["source_file"] = cur.text[cur.pos:end]
                cur.pos = end + 1
            elif key == "irq":
                attrs["irq_number"] = int(cur.word(), 0)
            elif key == "interrupt":
                attrs["is_interrupt_handler"] = True
            elif key == "monitor":
                attrs["is_monitor"] = True
            else:
                raise ParseError(f"unknown function attribute {key!r}",
                                 line_no)
        func = Function(name, FunctionType(ret, params), **attrs)
        self.module.add_function(func)
        return func, not declaration

    # -- function bodies -------------------------------------------------------

    def _parse_body(self, func: Function, lines: list[str]) -> None:
        # Pass 1: create the blocks so branches can forward-reference.
        blocks: dict[str, BasicBlock] = {}
        order: list[tuple[BasicBlock, list[tuple[int, str]]]] = []
        current: Optional[list[tuple[int, str]]] = None
        for offset, raw in enumerate(lines):
            stripped = raw.strip()
            label = _LABEL_RE.match(stripped)
            if label:
                block = func.add_block(label.group("name"))
                blocks[block.name] = block
                current = []
                order.append((block, current))
            else:
                if current is None:
                    raise ParseError(
                        f"instruction before first label in @{func.name}")
                current.append((offset, stripped))

        values: dict[str, Value] = {f"%{p.name}": p for p in func.params}
        for block, entries in order:
            for line_no, text in entries:
                inst = self._parse_instruction(text, blocks, values, line_no)
                block.instructions.append(inst)
                inst.parent = block

    def _parse_instruction(self, text: str, blocks, values,
                           line_no: int) -> Instruction:
        cur = _Cursor(text, line_no)
        result_name: Optional[str] = None
        if cur.startswith("%"):
            cur.expect("%")
            result_name = "%" + cur.word()
            cur.expect("=")
        opcode = cur.word()
        inst = self._dispatch(opcode, cur, blocks, values)
        if result_name is not None:
            values[result_name] = inst
        return inst

    def _operand(self, cur: _Cursor, values) -> Value:
        """``<type> <ref>`` — the universal operand form."""
        op_type = self.parse_type(cur)
        if cur.accept("null"):
            if not isinstance(op_type, PointerType):
                raise ParseError("null must be pointer-typed", cur.line_no)
            return ConstantNull(op_type)
        if cur.accept("@"):
            name = cur.word()
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise ParseError(f"unknown symbol @{name}", cur.line_no)
        if cur.accept("%"):
            key = "%" + cur.word()
            if key not in values:
                raise ParseError(f"use of undefined value {key}", cur.line_no)
            return values[key]
        word = cur.word()
        value = int(word, 0)
        if isinstance(op_type, PointerType):
            return ConstantPointer(value, op_type)
        if isinstance(op_type, IntType):
            return Constant(value, op_type)
        raise ParseError(f"constant of non-scalar type {op_type}",
                         cur.line_no)

    def _block_ref(self, cur: _Cursor, blocks) -> BasicBlock:
        cur.expect("label")
        cur.expect("%")
        name = cur.word()
        if name not in blocks:
            raise ParseError(f"unknown block %{name}", cur.line_no)
        return blocks[name]

    def _dispatch(self, opcode: str, cur: _Cursor, blocks,
                  values) -> Instruction:
        if opcode == "alloca":
            allocated = self.parse_type(cur)
            cur.expect("x")
            count = int(cur.word())
            return Alloca(allocated, count)
        if opcode == "load":
            self.parse_type(cur)  # result type (redundant, checked)
            cur.expect(",")
            return Load(self._operand(cur, values))
        if opcode == "store":
            value = self._operand(cur, values)
            cur.expect(",")
            return Store(value, self._operand(cur, values))
        if opcode == "gep":
            pointer = self._operand(cur, values)
            indices = []
            while cur.accept(","):
                indices.append(self._operand(cur, values))
            return GEP(pointer, indices)
        if opcode in BINARY_OPS:
            lhs = self._operand(cur, values)
            cur.expect(",")
            return BinOp(opcode, lhs, self._operand(cur, values))
        if opcode == "icmp":
            pred = cur.word()
            if pred not in ICMP_PREDICATES:
                raise ParseError(f"unknown predicate {pred}", cur.line_no)
            lhs = self._operand(cur, values)
            cur.expect(",")
            return ICmp(pred, lhs, self._operand(cur, values))
        if opcode in CAST_KINDS:
            value = self._operand(cur, values)
            cur.expect("to")
            return Cast(opcode, value, self.parse_type(cur))
        if opcode == "select":
            cond = self._operand(cur, values)
            cur.expect(",")
            a = self._operand(cur, values)
            cur.expect(",")
            return Select(cond, a, self._operand(cur, values))
        if opcode == "call":
            self.parse_type(cur)  # printed return type
            cur.expect("@")
            name = cur.word()
            if name not in self.module.functions:
                raise ParseError(f"call to unknown @{name}", cur.line_no)
            callee = self.module.functions[name]
            cur.expect("(")
            args = []
            if not cur.accept(")"):
                while True:
                    args.append(self._operand(cur, values))
                    if cur.accept(")"):
                        break
                    cur.expect(",")
            return Call(callee, args)
        if opcode == "icall":
            callee_type = self.parse_type(cur)
            if not isinstance(callee_type, FunctionType):
                raise ParseError("icall needs a function type", cur.line_no)
            target = self._operand(cur, values)
            cur.expect("(")
            args = []
            if not cur.accept(")"):
                while True:
                    args.append(self._operand(cur, values))
                    if cur.accept(")"):
                        break
                    cur.expect(",")
            return ICall(target, callee_type, args)
        if opcode == "br":
            cond = self._operand(cur, values)
            cur.expect(",")
            then_block = self._block_ref(cur, blocks)
            cur.expect(",")
            return Br(cond, then_block, self._block_ref(cur, blocks))
        if opcode == "jump":
            return Jump(self._block_ref(cur, blocks))
        if opcode == "ret":
            if cur.accept("void"):
                return Ret(None)
            return Ret(self._operand(cur, values))
        if opcode == "svc":
            number = int(cur.word().lstrip("#"), 0)
            cur.expect(",")
            return SVC(number, int(cur.word(), 0))
        if opcode == "halt":
            return Halt(self._operand(cur, values))
        if opcode == "unreachable":
            return Unreachable()
        raise ParseError(f"unknown opcode {opcode!r}", cur.line_no)


def parse_module(text: str) -> Module:
    """Parse OPEC-IR text into a fresh module."""
    return Parser(text).parse()

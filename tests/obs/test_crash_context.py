"""Crash-context integration: terminal faults carry the event tail."""

import pytest

import repro.ir as ir
from repro import build_opec
from repro.hw import (
    HardFault,
    Machine,
    SecurityAbort,
    stm32f4_discovery,
)
from repro.interp import Interpreter
from repro.ir import I32, VOID
from repro.obs import FlightRecorder
from repro.runtime.monitor import OpecMonitor

from ..conftest import MINI_SPECS, build_mini_module


def _attack_module(target_address):
    """task_b performs an arbitrary write at a leaked address."""
    module = ir.Module("attack")
    counter = module.add_global("counter", ir.I32, 0)
    secret = module.add_global("secret", ir.I32, 7)
    module.add_global("blob", ir.array(ir.I32, 8))
    _a, b = ir.define(module, "task_a", VOID, [])
    b.store(b.add(b.load(counter), b.load(secret)), counter)
    b.ret_void()
    _b, b = ir.define(module, "task_b", VOID, [])
    b.store(b.load(counter), b.gep(module.get_global("blob"), 0, 0))
    b.store(0xBAD, b.inttoptr(target_address, I32))
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    b.call(module.get_function("task_a"))
    b.call(module.get_function("task_b"))
    b.halt(b.load(counter))
    return module


def _armed_artifacts(board):
    """Leak the secret's address via a probe build, then arm the write."""
    probe = build_opec(_attack_module(0), board, MINI_SPECS)
    leaked = probe.image.global_address(probe.module.get_global("secret"))
    return build_opec(_attack_module(leaked), board, MINI_SPECS)


def _run_with_recorder(image, monitor_cls=OpecMonitor):
    machine = Machine(image.board)
    machine.recorder = FlightRecorder()
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, monitor_cls(machine, image))
    return interp, machine


class LyingMonitor(OpecMonitor):
    """Claims every MemManage fault is handled but never maps a region,
    so the interpreter's retry loop escalates to a HardFault."""

    def _virtualise_region(self, fault):
        return True


class TestSecurityAbortContext:
    def test_abort_carries_flight_recorder_tail(self, board):
        artifacts = _armed_artifacts(board)
        interp, _ = _run_with_recorder(artifacts.image)
        with pytest.raises(SecurityAbort, match="outside its policy") as exc:
            interp.run()
        context = exc.value.crash_context
        assert context.startswith("flight recorder: last")
        # The tail shows the fault being handled when the run died: the
        # MemManage span opened (and was closed by the finally), then
        # the crash marker with the abort reason.
        assert "fault.memmanage" in context
        assert "run.crash" in context
        assert "SecurityAbort" in context
        assert "outside its policy" in context

    def test_no_recorder_no_context(self, board):
        from repro import run_image

        artifacts = _armed_artifacts(board)
        with pytest.raises(SecurityAbort) as exc:
            run_image(artifacts.image)
        assert not hasattr(exc.value, "crash_context")


class TestRetryLimitContext:
    def test_memmanage_escalated_hardfault_carries_context(self, board):
        artifacts = _armed_artifacts(board)
        interp, machine = _run_with_recorder(artifacts.image, LyingMonitor)
        with pytest.raises(HardFault, match="retry limit") as exc:
            interp.run()
        context = exc.value.crash_context
        assert "flight recorder" in context
        # Sixteen claimed-handled retries each open and close a
        # MemManage span; a 32-event window sees several of them.
        assert context.count("fault.memmanage") >= 4
        assert "HardFault" in context
        # The recorder itself holds the full escalation: 16 retries
        # for the single faulting store.
        kinds = [e.kind for e in machine.recorder.events()]
        assert kinds.count("fault.memmanage") == 32  # 16 B + 16 E


class TestHaltEvents:
    def test_clean_halt_emits_halt_event_not_crash(self, board):
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        interp, machine = _run_with_recorder(artifacts.image)
        code = interp.run()
        kinds = [e.kind for e in machine.recorder.events()]
        assert "run.halt" in kinds
        assert "run.crash" not in kinds
        assert machine.recorder.events()[-1].args == {"code": code}

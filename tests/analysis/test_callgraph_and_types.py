"""Unit tests for call-graph construction and type-based icall fallback."""

import repro.ir as ir
from repro.analysis import (
    TypeBasedResolver,
    address_taken_functions,
    build_call_graph,
    signature_key,
    signatures_match,
)
from repro.ir import FunctionType, I8, I16, I32, VOID, StructType, ptr


class TestSignatureMatching:
    def test_int_widths_not_discriminated(self):
        a = FunctionType(VOID, [I8])
        b = FunctionType(VOID, [I32])
        assert signatures_match(a, b)

    def test_pointer_types_discriminated(self):
        a = FunctionType(VOID, [ptr(I8)])
        b = FunctionType(VOID, [ptr(I32)])
        assert not signatures_match(a, b)

    def test_struct_types_discriminated(self):
        s1 = StructType("s1", [("a", I32)])
        s2 = StructType("s2", [("a", I32)])
        assert not signatures_match(
            FunctionType(VOID, [s1]), FunctionType(VOID, [s2]))

    def test_return_type_discriminated(self):
        assert signature_key(FunctionType(I32, [])) != signature_key(
            FunctionType(VOID, []))

    def test_arity_discriminated(self):
        assert not signatures_match(
            FunctionType(VOID, [I32]), FunctionType(VOID, [I32, I32]))


def _module_with_unresolvable_icall():
    """An icall whose target comes from an opaque integer — the
    points-to analysis cannot resolve it, type analysis must."""
    module = ir.Module("m")
    matching, mb = ir.define(module, "matching", VOID, [I32])
    mb.ret_void()
    other, ob = ir.define(module, "other", VOID, [ptr(I8)])
    ob.ret_void()
    seed = module.add_global("seed", I32, 0)
    caller, cb = ir.define(module, "caller", VOID, [])
    # Reference both functions so they are address-taken.
    sink = cb.alloca(I32, count=2)
    cb.store(cb.ptrtoint(matching), cb.gep(sink, 0))
    cb.store(cb.ptrtoint(other), cb.gep(sink, 1))
    opaque = cb.load(seed)
    icall = cb.icall(opaque, FunctionType(VOID, [I32]), 5)
    cb.ret_void()
    return module, matching, other, icall


class TestTypeResolver:
    def test_matches_only_compatible_address_taken(self):
        module, matching, other, icall = _module_with_unresolvable_icall()
        resolver = TypeBasedResolver(module)
        assert resolver.targets(icall) == {matching}

    def test_address_taken_detection(self):
        module, matching, other, _ = _module_with_unresolvable_icall()
        taken = address_taken_functions(module)
        assert matching in taken and other in taken
        assert module.get_function("caller") not in taken


class TestCallGraph:
    def test_direct_edges(self, mini_module):
        graph = build_call_graph(mini_module)
        main = mini_module.get_function("main")
        assert {f.name for f in graph.callees(main)} == {"task_a", "task_b"}

    def test_icall_fallback_records_type_resolution(self):
        module, matching, _other, icall = _module_with_unresolvable_icall()
        graph = build_call_graph(module)
        assert graph.icall_count() == 1
        assert graph.resolved_by("type") == 1
        assert graph.resolved_by("svf") == 0
        site = graph.icall_sites[0]
        assert site.targets == {matching}
        caller = module.get_function("caller")
        assert matching in graph.callees(caller)

    def test_svf_preferred_over_type(self):
        module = ir.Module("m")
        handler, hb = ir.define(module, "handler", VOID, [I32])
        hb.ret_void()
        decoy, db = ir.define(module, "decoy", VOID, [I32])
        db.ret_void()
        caller, cb = ir.define(module, "caller", VOID, [])
        icall = cb.icall(cb.ptrtoint(handler), FunctionType(VOID, [I32]), 1)
        # Make the decoy address-taken so type analysis *would* add it.
        cb.store(cb.ptrtoint(decoy), cb.alloca(I32))
        cb.ret_void()
        graph = build_call_graph(module)
        site = graph.icall_sites[0]
        assert site.resolved_by == "svf"
        assert site.targets == {handler}  # no decoy

    def test_reachable_from_backtracks_at_stops(self, mini_module):
        graph = build_call_graph(mini_module)
        main = mini_module.get_function("main")
        task_a = mini_module.get_function("task_a")
        reached = graph.reachable_from(main, stop_at=[task_a])
        names = {f.name for f in reached}
        assert "task_a" not in names
        assert "task_b" in names
        # The stop set never excludes the entry itself.
        assert graph.reachable_from(task_a, stop_at=[task_a]) == {task_a}

    def test_target_counts(self):
        module, *_ = _module_with_unresolvable_icall()
        graph = build_call_graph(module)
        assert graph.target_counts() == [1]

"""Unit tests for the IRBuilder, including structured control flow."""

import pytest

import repro.ir as ir
from repro.ir import I8, I32, VOID


def run_function(module, entry="f", args=()):
    """Execute a test module on a bare machine (no MPU)."""
    from repro.hw import Machine, stm32f4_discovery
    from repro.image import build_vanilla_image
    from repro.interp import Interpreter

    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image)
    return interp.run(entry=entry, args=tuple(args))


class TestBasics:
    def test_store_coerces_int_to_pointee_width(self, builder):
        module, _func, b = builder
        slot = b.alloca(I8)
        b.store(300, slot)  # wraps to i8
        b.halt(b.zext(b.load(slot)))
        assert run_function(module) == 300 & 0xFF

    def test_define_creates_entry_block(self):
        module = ir.Module("m")
        func, b = ir.define(module, "g", VOID, [])
        assert func.entry_block.name == "entry"
        b.ret_void()
        ir.verify_module(module)

    def test_call_coerces_int_args(self):
        module = ir.Module("m")
        callee, cb = ir.define(module, "id8", I8, [I8])
        cb.ret(callee.params[0])
        _main, b = ir.define(module, "f", I32, [])
        result = b.call(callee, 258)
        b.halt(b.zext(result))
        assert run_function(module) == 2


class TestIfThen:
    def test_taken(self, builder):
        module, _func, b = builder
        slot = b.alloca(I32)
        b.store(0, slot)
        with b.if_then(b.icmp("eq", 1, 1)):
            b.store(5, slot)
        b.halt(b.load(slot))
        assert run_function(module) == 5

    def test_not_taken(self, builder):
        module, _func, b = builder
        slot = b.alloca(I32)
        b.store(0, slot)
        with b.if_then(b.icmp("eq", 1, 2)):
            b.store(5, slot)
        b.halt(b.load(slot))
        assert run_function(module) == 0


class TestIfElse:
    @pytest.mark.parametrize("cond, expected", [(1, 10), (0, 20)])
    def test_both_arms(self, cond, expected):
        module = ir.Module("m")
        _func, b = ir.define(module, "f", I32, [])
        slot = b.alloca(I32)
        with b.if_else(b.icmp("eq", cond, 1)) as otherwise:
            b.store(10, slot)
            otherwise()
            b.store(20, slot)
        b.halt(b.load(slot))
        assert run_function(module) == expected

    def test_early_return_in_then(self):
        module = ir.Module("m")
        _func, b = ir.define(module, "f", I32, [])
        with b.if_else(b.icmp("eq", 1, 1)) as otherwise:
            b.halt(1)
            otherwise()
        b.halt(2)
        ir.verify_module(module)
        assert run_function(module) == 1


class TestLoops:
    def test_while_loop(self, builder):
        module, _func, b = builder
        i = b.alloca(I32)
        b.store(0, i)
        with b.while_loop(lambda: b.icmp("slt", b.load(i), 10)):
            b.store(b.add(b.load(i), 3), i)
        b.halt(b.load(i))
        assert run_function(module) == 12

    def test_for_range_sums(self, builder):
        module, _func, b = builder
        total = b.alloca(I32)
        b.store(0, total)
        with b.for_range(0, 5) as load_i:
            b.store(b.add(b.load(total), load_i()), total)
        b.halt(b.load(total))
        assert run_function(module) == 10

    def test_for_range_step(self, builder):
        module, _func, b = builder
        count = b.alloca(I32)
        b.store(0, count)
        with b.for_range(0, 10, step=3):
            b.store(b.add(b.load(count), 1), count)
        b.halt(b.load(count))
        assert run_function(module) == 4  # 0, 3, 6, 9

    def test_nested_loops(self, builder):
        module, _func, b = builder
        total = b.alloca(I32)
        b.store(0, total)
        with b.for_range(0, 3):
            with b.for_range(0, 4):
                b.store(b.add(b.load(total), 1), total)
        b.halt(b.load(total))
        assert run_function(module) == 12


class TestMmio:
    def test_mmio_constant_pointer(self, builder):
        _module, _func, b = builder
        p = b.mmio(0x40011000)
        assert p.address == 0x40011000
        assert p.type == ir.ptr(I32)

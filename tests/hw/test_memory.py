"""Unit tests for the memory map."""

import pytest

from repro.hw import FlashRegion, HardFault, MemoryMap, MMIORegion, RamRegion


class Echo:
    """MMIO device echoing offset on read, logging writes."""

    def __init__(self):
        self.writes = []

    def mmio_read(self, offset, size):
        return offset

    def mmio_write(self, offset, size, value):
        self.writes.append((offset, size, value))


class TestRam:
    def test_little_endian_roundtrip(self):
        ram = RamRegion("r", 0x20000000, 0x100)
        ram.write(0x20000000, 4, 0x01020304)
        assert ram.read(0x20000000, 4) == 0x01020304
        assert ram.read(0x20000000, 1) == 0x04
        assert ram.read(0x20000003, 1) == 0x01

    def test_bulk_bytes(self):
        ram = RamRegion("r", 0x20000000, 0x100)
        ram.write_bytes(0x20000010, b"hello")
        assert ram.read_bytes(0x20000010, 5) == b"hello"

    def test_value_masked_to_size(self):
        ram = RamRegion("r", 0, 16)
        ram.write(0, 1, 0x1FF)
        assert ram.read(0, 1) == 0xFF


class TestBulkBounds:
    """Regression: bulk accesses leaving the region used to fail
    silently — ``read_bytes`` returned short data (Python slicing past
    the end), ``write_bytes`` *grew* the backing bytearray.  Both must
    raise :class:`HardFault` like every other out-of-range access."""

    def test_read_past_end_faults(self):
        ram = RamRegion("r", 0x20000000, 0x10)
        with pytest.raises(HardFault, match="leaves region"):
            ram.read_bytes(0x20000008, 0x10)

    def test_read_below_base_faults(self):
        ram = RamRegion("r", 0x20000000, 0x10)
        with pytest.raises(HardFault, match="leaves region"):
            ram.read_bytes(0x1FFFFFFC, 8)

    def test_write_past_end_faults_and_does_not_grow(self):
        ram = RamRegion("r", 0x20000000, 0x10)
        with pytest.raises(HardFault, match="leaves region"):
            ram.write_bytes(0x2000000C, b"\xAA" * 8)
        assert len(ram.data) == 0x10  # backing store must not grow

    def test_exact_fit_still_allowed(self):
        ram = RamRegion("r", 0x20000000, 0x10)
        ram.write_bytes(0x20000000, b"\x55" * 0x10)
        assert ram.read_bytes(0x20000000, 0x10) == b"\x55" * 0x10

    def test_map_bulk_read_crossing_region_end_faults(self):
        memory = MemoryMap()
        memory.map(RamRegion("a", 0x0, 0x10))
        with pytest.raises(HardFault, match="bulk read crosses"):
            memory.read_bytes(0x08, 0x10)

    def test_map_bulk_write_crossing_region_end_faults(self):
        memory = MemoryMap()
        region = memory.map(RamRegion("a", 0x0, 0x10))
        with pytest.raises(HardFault, match="bulk write crosses"):
            memory.write_bytes(0x08, b"\xAA" * 0x10)
        assert len(region.data) == 0x10


class TestFlash:
    def test_runtime_write_faults(self):
        flash = FlashRegion("f", 0x08000000, 0x100)
        with pytest.raises(HardFault):
            flash.write(0x08000000, 4, 1)

    def test_program_writes(self):
        flash = FlashRegion("f", 0x08000000, 0x100)
        flash.program(0x08000010, b"\xAA\xBB")
        assert flash.read(0x08000010, 2) == 0xBBAA


class TestMap:
    def test_overlap_rejected(self):
        memory = MemoryMap()
        memory.map(RamRegion("a", 0x100, 0x100))
        with pytest.raises(ValueError, match="overlaps"):
            memory.map(RamRegion("b", 0x180, 0x100))

    def test_unmapped_access_faults(self):
        memory = MemoryMap()
        with pytest.raises(HardFault, match="unmapped"):
            memory.read(0xDEAD0000, 4)

    def test_access_crossing_region_end_faults(self):
        memory = MemoryMap()
        memory.map(RamRegion("a", 0x0, 0x10))
        with pytest.raises(HardFault, match="crosses"):
            memory.read(0x0E, 4)

    def test_mmio_dispatch(self):
        memory = MemoryMap()
        device = Echo()
        memory.map(MMIORegion("dev", 0x40000000, 0x100, device))
        assert memory.read(0x40000004, 4) == 4
        memory.write(0x40000008, 4, 99)
        assert device.writes == [(8, 4, 99)]

    def test_bulk_write_to_flash_rejected(self):
        memory = MemoryMap()
        memory.map(FlashRegion("f", 0x0, 0x100))
        with pytest.raises(HardFault):
            memory.write_bytes(0x0, b"hi")

    def test_find_caches_and_still_correct(self):
        memory = MemoryMap()
        a = memory.map(RamRegion("a", 0x0, 0x10))
        c = memory.map(RamRegion("c", 0x100, 0x10))
        assert memory.find(0x5) is a
        assert memory.find(0x105) is c
        assert memory.find(0x6) is a
        assert memory.find(0x50) is None

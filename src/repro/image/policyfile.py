"""The operation policy file (§4.3).

"Finally, OPEC-Compiler generates a policy file that contains
accessible resources of each operation."  This module serialises a
build's policy — operations, their functions, resource dependencies,
variable placement, MPU templates, relocation slots — to a JSON
document and validates it back, so a build can be inspected, diffed,
and audited outside the Python process.
"""

from __future__ import annotations

import json
from typing import Any

from ..partition.policy import SystemPolicy
from .linker import OpecImage


def policy_document(image: OpecImage) -> dict[str, Any]:
    """Build the JSON-serialisable policy document for one image."""
    policy: SystemPolicy = image.policy
    operations = []
    for operation in policy.operations:
        layout = image.layout_of(operation)
        operations.append({
            "index": operation.index,
            "entry": operation.entry.name,
            "default": operation.is_default,
            "functions": sorted(f.name for f in operation.functions),
            "globals": {
                "internal": sorted(
                    g.name for g in policy.internal_vars(operation)),
                "external": sorted(
                    g.name for g in policy.external_vars(operation)),
            },
            "peripheral_windows": [
                {
                    "base": f"0x{w.base:08X}",
                    "size": w.size,
                    "peripherals": [p.name for p in w.peripherals],
                }
                for w in operation.windows
            ],
            "core_peripherals": sorted(
                p.name for p in operation.resources.core_peripherals),
            "stack_info": {
                str(index): size
                for index, size in sorted(operation.stack_info.items())
            },
            "sanitize": {
                g.name: list(g.sanitize_range)
                for g in policy.external_vars(operation)
                if g.sanitize_range is not None
            },
            "data_section": {
                "base": f"0x{layout.section.base:08X}",
                "size": layout.section.size,
            },
            "mpu_regions": [
                {
                    "number": t.number,
                    "base": f"0x{t.base:08X}",
                    "size": t.size,
                    "priv": t.priv,
                    "unpriv": t.unpriv,
                }
                for t in layout.templates
            ],
            "uses_heap": layout.uses_heap,
        })
    return {
        "format": "opec-policy-v1",
        "module": image.module.name,
        "board": image.board.name,
        "operations": operations,
        "relocation_table": {
            g.name: f"0x{slot:08X}"
            for g, slot in sorted(image.reloc_slots.items(),
                                  key=lambda kv: kv[1])
        },
        "public_data": {
            g.name: f"0x{addr:08X}"
            for g, addr in sorted(image.public_addresses.items(),
                                  key=lambda kv: kv[1])
        },
        "memory": {
            "stack_base": f"0x{image.stack_base:08X}",
            "stack_size": image.stack_size,
            "heap_base": f"0x{image.heap_base:08X}",
            "heap_size": image.heap_size,
            "zone_base": f"0x{image.zone_start:08X}",
            "zone_size": image.zone_size,
        },
    }


def dump_policy(image: OpecImage, indent: int = 2) -> str:
    """Render the policy file as JSON text."""
    return json.dumps(policy_document(image), indent=indent)


def write_policy(image: OpecImage, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_policy(image))
        handle.write("\n")


class PolicyValidationError(Exception):
    """A policy document is inconsistent with the image it claims."""


def validate_policy(document: dict[str, Any], image: OpecImage) -> None:
    """Cross-check a (possibly externally edited) document against an
    image; raises :class:`PolicyValidationError` on any mismatch."""
    errors: list[str] = []
    if document.get("format") != "opec-policy-v1":
        errors.append("unknown policy format")
    if document.get("module") != image.module.name:
        errors.append("module name mismatch")
    ops = document.get("operations", [])
    if len(ops) != len(image.policy.operations):
        errors.append("operation count mismatch")
    for entry in ops:
        try:
            operation = image.policy.operation_by_entry(entry["entry"])
        except KeyError:
            errors.append(f"unknown operation {entry.get('entry')!r}")
            continue
        expected = sorted(f.name for f in operation.functions)
        if entry.get("functions") != expected:
            errors.append(f"function set mismatch for {operation.name}")
        externals = sorted(
            g.name for g in image.policy.external_vars(operation))
        if entry.get("globals", {}).get("external") != externals:
            errors.append(f"external set mismatch for {operation.name}")
    slots = document.get("relocation_table", {})
    if len(slots) != len(image.reloc_slots):
        errors.append("relocation table size mismatch")
    if errors:
        raise PolicyValidationError("; ".join(errors))


def load_policy(text: str) -> dict[str, Any]:
    document = json.loads(text)
    if document.get("format") != "opec-policy-v1":
        raise PolicyValidationError("unknown policy format")
    return document

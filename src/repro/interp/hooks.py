"""Runtime hook interface between the interpreter and a monitor.

A build flavour (vanilla / OPEC / ACES) plugs in by subclassing
:class:`RuntimeHooks`.  The interpreter consults the hooks exactly
where the hardware would transfer control to privileged software:

* before/after calls to functions the build instrumented (operation
  entries for OPEC, compartment-crossing edges for ACES) — the SVC
  path of §4.4/§5.3;
* on a MemManage fault (peripheral MPU-region virtualisation, §5.2);
* on a BusFault from unprivileged PPB access (core-peripheral
  emulation, §5.2);
* when resolving a global variable's address (the variable relocation
  table indirection the instrumentation inserts, §4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..hw.exceptions import BusFault, MemManageFault
from ..ir.function import Function
from ..ir.values import GlobalVariable

if TYPE_CHECKING:
    from .interpreter import Interpreter


class RuntimeHooks:
    """Default hooks: a vanilla build — no isolation, all privileged."""

    def on_reset(self, interp: "Interpreter") -> None:
        """Called once before ``main`` starts (monitor init, §5.1)."""

    def global_address(self, interp: "Interpreter", gvar: GlobalVariable) -> int:
        """Resolve a global's address (may go through the reloc table)."""
        return interp.image.global_address(gvar)

    def before_call(self, interp: "Interpreter", callee: Function,
                    args: list[int]) -> list[int]:
        """Called before a direct/indirect call; may rewrite ``args``
        (OPEC's stack-argument relocation, §5.2) after a domain switch."""
        return args

    def after_return(self, interp: "Interpreter", callee: Function) -> None:
        """Called after a call instrumented by :meth:`before_call`
        returns (the exit-side SVC)."""

    def is_switch_point(self, interp: "Interpreter", callee: Function) -> bool:
        """Whether a call to ``callee`` crosses a domain boundary."""
        return False

    def handle_memmanage(self, interp: "Interpreter", fault: MemManageFault):
        """MemManage handler.  Return values:

        * ``False`` — unhandled: the fault escalates;
        * ``True`` — fixed up (e.g. an MPU region was mapped in):
          the faulting access is retried;
        * ``("emulated", value)`` — the handler performed the access
          itself (ACES' micro-emulator, §5.2): for a load ``value`` is
          the result, for a store it is ignored.
        """
        return False

    def handle_busfault(self, interp: "Interpreter",
                        fault: BusFault) -> Optional[int]:
        """BusFault handler.  For an emulated *load* return the value;
        for an emulated *store* return any int (e.g. 0) to signal the
        store was performed.  ``None`` means unhandled → HardFault."""
        return None

    def on_halt(self, interp: "Interpreter", code: int) -> None:
        """Called when the firmware halts."""

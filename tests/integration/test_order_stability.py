"""Order-stability: set-iteration order must not leak into artifacts.

Once the evaluation fans out over processes (``REPRO_JOBS``) the same
app may be analysed under different hash seeds, so everything the
compiler emits — operations, the policy document, the rendered
tables — must be identical across (a) two independent builds in one
process and (b) subprocesses running with different
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.apps import pinlock
from repro.image.policyfile import policy_document
from repro.pipeline import build_opec

REPO = Path(__file__).resolve().parents[2]

_RENDER_SCRIPT = """
import json
from repro.apps import pinlock
from repro.image.policyfile import policy_document
from repro.pipeline import build_opec
from repro.eval import table1, table3
from repro.eval.workloads import clear_caches

app = pinlock.build(rounds=5)
artifacts = build_opec(app.module, app.board, app.specs)
print(json.dumps(policy_document(artifacts.image), indent=None, sort_keys=True))
row1 = table1.compute_row("PinLock")
print(row1.operations, f"{row1.avg_functions:.2f}", row1.privileged_code,
      f"{row1.avg_gvars:.2f}", f"{row1.avg_gvars_pct:.2f}")
row3 = table3.compute_row("PinLock")
print(row3.icalls, row3.svf_resolved, row3.type_resolved,
      f"{row3.avg_targets:.2f}", row3.max_targets)
"""


def _build_snapshot():
    app = pinlock.build(rounds=5)
    artifacts = build_opec(app.module, app.board, app.specs)
    doc = policy_document(artifacts.image)
    entries = [(op.index, op.name, sorted(f.name for f in op.functions))
               for op in artifacts.operations]
    return entries, json.dumps(doc, sort_keys=True)


def test_two_builds_identical():
    first_entries, first_doc = _build_snapshot()
    second_entries, second_doc = _build_snapshot()
    assert first_entries == second_entries
    assert first_doc == second_doc


def _render_under_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["REPRO_PROFILE"] = "quick"
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RENDER_SCRIPT],
        cwd=REPO, env=env, check=True, capture_output=True, text=True,
    )
    return proc.stdout


def test_artifacts_stable_across_hash_seeds():
    """Different PYTHONHASHSEED → different set-iteration order inside
    the analyses; the policy document and Table 1/Table 3 rows must
    still come out byte-identical."""
    out_a = _render_under_hashseed("0")
    out_b = _render_under_hashseed("1")
    assert out_a == out_b
    assert out_a.strip()  # sanity: the subprocess actually rendered

"""Simple peripheral models: register files, GPIO, and the UART.

These carry just enough behaviour for the HAL in :mod:`repro.apps.hal`
to run the paper's workloads end-to-end: clock-enable bits that the
init tasks poke, GPIO pins the applications toggle/read, and a UART
with host-fed RX and captured TX (PinLock's serial port, §6).
"""

from __future__ import annotations

from collections import deque

from ..exceptions import HardFault

# A polling loop spinning this many times on an empty RX queue means the
# host forgot to feed input; fail loudly instead of hanging the run.
_POLL_LIMIT = 2_000_000


class RegisterFile:
    """A generic peripheral whose registers are plain storage.

    Models configuration-only blocks (RCC, SYSCFG, EXTI, PWR, timers,
    I2C config, …) where the HAL writes bits and occasionally reads
    them back (e.g. waiting for a PLL-ready flag).  ``readonly_ones``
    lists offsets whose reads also OR-in a constant — used for
    always-ready status flags.
    """

    def __init__(self, readonly_ones: dict[int, int] | None = None):
        self.machine = None
        self.registers: dict[int, int] = {}
        self.readonly_ones = dict(readonly_ones or {})
        self.write_log: list[tuple[int, int]] = []

    def mmio_read(self, offset: int, size: int) -> int:
        value = self.registers.get(offset, 0)
        return value | self.readonly_ones.get(offset, 0)

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        self.registers[offset] = value
        self.write_log.append((offset, value))


class RCC(RegisterFile):
    """Reset and clock control; CR reads report PLL/HSE ready."""

    CR = 0x00
    PLLCFGR = 0x04
    CFGR = 0x08
    AHB1ENR = 0x30
    APB1ENR = 0x40
    APB2ENR = 0x44

    def __init__(self):
        # HSERDY (bit 17) and PLLRDY (bit 25) always read as set.
        super().__init__(readonly_ones={self.CR: (1 << 17) | (1 << 25)})


class GPIO(RegisterFile):
    """GPIO port: MODER/OTYPER/ODR as storage, IDR host-controlled."""

    MODER = 0x00
    IDR = 0x10
    ODR = 0x14
    BSRR = 0x18

    def __init__(self):
        super().__init__()
        self.input_state = 0

    def set_input(self, pin: int, high: bool) -> None:
        """Host-side: drive an input pin (button press, lock sensor)."""
        if high:
            self.input_state |= 1 << pin
        else:
            self.input_state &= ~(1 << pin)

    def output_state(self) -> int:
        return self.registers.get(self.ODR, 0)

    def pin_is_high(self, pin: int) -> bool:
        return bool(self.output_state() >> pin & 1)

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.IDR:
            return self.input_state
        return super().mmio_read(offset, size)

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.BSRR:
            odr = self.registers.get(self.ODR, 0)
            odr |= value & 0xFFFF           # set bits
            odr &= ~(value >> 16 & 0xFFFF)  # reset bits
            self.registers[self.ODR] = odr
            self.write_log.append((offset, value))
            return
        super().mmio_write(offset, size, value)


class UART:
    """USART with host-fed receive queue and captured transmit bytes.

    Register layout matches the STM32 USART: SR at 0x00 (RXNE bit 5,
    TC bit 6, TXE bit 7), DR at 0x04, BRR at 0x08, CR1 at 0x0C.
    """

    SR = 0x00
    DR = 0x04
    BRR = 0x08
    CR1 = 0x0C

    SR_RXNE = 1 << 5
    SR_TC = 1 << 6
    SR_TXE = 1 << 7

    def __init__(self, cycles_per_byte: int = 14_000):
        # ~115200 baud at a 168 MHz core: the wire is what firmware
        # waits on, so receive is paced — one byte becomes visible every
        # `cycles_per_byte` machine cycles.  This keeps the baseline
        # runtime I/O-bound, as in the paper's measurements (§6.3).
        self.machine = None
        self.cycles_per_byte = cycles_per_byte
        self._next_ready = 0
        self.rx_queue: deque[int] = deque()
        self.tx_bytes = bytearray()
        self.brr = 0
        self.cr1 = 0
        self._empty_polls = 0

    # -- host side ---------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Queue bytes for the firmware to receive."""
        self.rx_queue.extend(data)

    def transmitted(self) -> bytes:
        return bytes(self.tx_bytes)

    # -- device side ---------------------------------------------------

    def _rx_ready(self) -> bool:
        if not self.rx_queue:
            return False
        return self.machine is None or self.machine.cycles >= self._next_ready

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.SR:
            status = self.SR_TXE | self.SR_TC
            if self._rx_ready():
                status |= self.SR_RXNE
                self._empty_polls = 0
            elif not self.rx_queue:
                self._empty_polls += 1
                if self._empty_polls > _POLL_LIMIT:
                    raise HardFault("UART RX polled forever with no input")
            return status
        if offset == self.DR:
            if self.rx_queue:
                byte = self.rx_queue.popleft()
                if self.machine is not None:
                    self._next_ready = self.machine.cycles + self.cycles_per_byte
                return byte
            return 0
        if offset == self.BRR:
            return self.brr
        if offset == self.CR1:
            return self.cr1
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.DR:
            self.tx_bytes.append(value & 0xFF)
        elif offset == self.BRR:
            self.brr = value
        elif offset == self.CR1:
            self.cr1 = value

"""Differential property tests across enforcement backends.

The interface contract (:mod:`repro.hw.backend`) is that all three
backends — ARMv7-M MPU, the RISC-V PMP adapter, and the permission
overlay — arbitrate unprivileged accesses identically for any region
set the monitor could load.  Random region sets deliberately include
disabled regions, sub-region masks, and both ``PRIVDEFENA`` settings:
each of those knobs has had (or nearly had) a divergence bug — disabled
regions compiled into live PMP entries; ``privdefena`` assigned but
never consulted on the PMP no-match path.

Privileged semantics legitimately differ on PMP (M-mode bypasses
unlocked entries where the MPU consults ``priv`` permissions), so the
three-way property quantifies over unprivileged accesses only; the
overlay claims *exact* MPU semantics and is held to them at both
privilege levels.
"""

from hypothesis import given, settings, strategies as st

from repro.hw.mpu import MPU, MPURegion, align_base
from repro.hw.overlay import OverlayProtection
from repro.hw.pmp import PmpProtection

sizes = st.sampled_from([32 << i for i in range(16)])
addresses = st.integers(min_value=0, max_value=0x3FFFFFFF)
probe_sizes = st.sampled_from([1, 2, 4, 8])


@st.composite
def mpu_regions(draw):
    size = draw(sizes)
    return MPURegion(
        number=draw(st.integers(0, 7)),
        base=align_base(draw(addresses), size),
        size=size,
        priv=draw(st.sampled_from(["NA", "RO", "RW"])),
        unpriv=draw(st.sampled_from(["NA", "RO", "RW"])),
        subregion_disable=draw(st.integers(0, 255)),
        enabled=draw(st.booleans()),
    )


region_sets = st.lists(mpu_regions(), max_size=5,
                       unique_by=lambda r: r.number)


@given(region_sets, addresses, probe_sizes, st.booleans(), st.booleans())
@settings(max_examples=300, deadline=None)
def test_all_backends_agree_for_unprivileged(region_list, address, size,
                                             write, privdefena):
    mpu = MPU(enabled=True, privdefena=privdefena)
    overlay = OverlayProtection()
    overlay.privdefena = privdefena
    pmp = PmpProtection()
    pmp.privdefena = privdefena
    for region in region_list:
        mpu.set_region(region)
        overlay.set_region(region)
    overlay.enabled = True
    backends = [mpu, overlay]
    try:
        for region in region_list:
            pmp.set_region(region)
    except ValueError:
        pass  # over the 16-entry budget: reported loudly, not silently
    else:
        pmp.enabled = True
        backends.append(pmp)
    verdicts = {b.name: b.allows(address, size, False, write)
                for b in backends}
    assert len(set(verdicts.values())) == 1, verdicts


@given(region_sets, addresses, probe_sizes,
       st.booleans(), st.booleans(), st.booleans())
@settings(max_examples=300, deadline=None)
def test_overlay_matches_mpu_exactly(region_list, address, size,
                                     privileged, write, privdefena):
    """The overlay claims exact MPU semantics — including privileged
    permissions and the ``PRIVDEFENA`` default-map fall-through."""
    mpu = MPU(enabled=True, privdefena=privdefena)
    overlay = OverlayProtection()
    overlay.privdefena = privdefena
    for region in region_list:
        mpu.set_region(region)
        overlay.set_region(region)
    overlay.enabled = True
    assert overlay.allows(address, size, privileged, write) == \
        mpu.allows(address, size, privileged, write)


@given(region_sets, st.lists(st.tuples(addresses, probe_sizes,
                                       st.booleans()),
                             min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_decision_caches_never_change_verdicts(region_list, probes):
    """Repeating any probe sequence gives the same verdicts — the
    word-granular decision caches are transparent."""
    for make in (lambda: MPU(enabled=True), OverlayProtection,
                 PmpProtection):
        backend = make()
        try:
            for region in region_list:
                backend.set_region(region)
        except ValueError:
            return
        backend.enabled = True
        first = [backend.allows(a, s, False, w) for a, s, w in probes]
        second = [backend.allows(a, s, False, w) for a, s, w in probes]
        assert first == second

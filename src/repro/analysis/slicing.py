"""Intra-procedural slicing utilities (§4.2).

Two primitives back the resource-dependency analysis:

* :func:`forward_derived` — forward slice: the set of values derived
  from a root value through pointer-preserving operations (gep, casts,
  selects).  Used to find loads/stores that touch a global directly.
* :func:`resolve_constant_addresses` — backward slice: walk a pointer
  operand back to constant machine addresses.  Used to identify
  memory-mapped peripheral accesses; follows constants through
  ``inttoptr``/``gep``/``add`` chains, through formal parameters to the
  constants passed at direct call sites (bounded depth), and through
  loads of constant-initialised scalar globals (the "HAL handle holds
  the peripheral base" pattern).

Both primitives are on the compile-time hot path (they run once per
load/store pointer per function), so each is indexed and memoized:
``forward_derived`` consults a per-function def-use index instead of
rescanning every instruction per fixpoint round, and
:class:`ConstantAddressResolver` caches resolved sub-slices.  Modules
are assumed frozen once analysis starts (the builders fully construct
them first), which is what makes the caches safe.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from typing import Iterable, Optional

from ..ir.function import Function
from ..ir.instructions import BinOp, Call, Cast, GEP, Load, Select
from ..ir.module import Module
from ..ir.values import Constant, ConstantPointer, GlobalVariable, Parameter, Value

_MAX_PARAM_DEPTH = 3

# func -> {value: [instructions that derive a pointer from it]}.  Weak
# keys so cached indexes die with their functions (test modules churn).
_use_index_cache: "weakref.WeakKeyDictionary[Function, dict]" = \
    weakref.WeakKeyDictionary()


def clear_slicing_caches() -> None:
    """Drop every memoised def-use index.

    Weak keys already drop entries with their functions; this is for
    callers that mutate a *live* function after analysing it (tests),
    where the stale index would otherwise survive.
    """
    _use_index_cache.clear()


def _use_index(func: Function) -> dict[Value, list[Value]]:
    """Map each value to the instructions deriving a value from it
    under the :func:`forward_derived` rules."""
    index = _use_index_cache.get(func)
    if index is None:
        index = defaultdict(list)
        for inst in func.iter_instructions():
            if isinstance(inst, (GEP, Cast)):
                index[inst.operands[0]].append(inst)
            elif isinstance(inst, Select):
                index[inst.operands[1]].append(inst)
                index[inst.operands[2]].append(inst)
            elif isinstance(inst, BinOp):
                for op in inst.operands:
                    index[op].append(inst)
        index.default_factory = None  # freeze: reads must not grow it
        _use_index_cache[func] = index
    return index


def forward_derived(func: Function, roots: Iterable[Value]) -> set[Value]:
    """All values in ``func`` transitively derived from ``roots``.

    A single worklist pass over the def-use index: each derivation edge
    is looked at once, instead of rescanning every instruction of the
    function until a fixpoint (quadratic in instruction count).
    """
    index = _use_index(func)
    derived: set[Value] = set(roots)
    stack: list[Value] = list(derived)
    while stack:
        value = stack.pop()
        for inst in index.get(value, ()):
            if inst not in derived:
                derived.add(inst)
                stack.append(inst)
    return derived


class ConstantAddressResolver:
    """Backward-slices pointer operands to constant addresses.

    ``resolve`` is memoized per ``(value, depth)``: HAL register-write
    helpers are backward-sliced once, not once per call site of every
    function that uses them.  A cycle guard returns the empty set on
    re-entrant sub-slices (mutually recursive parameter chains) and
    keeps cycle-tainted results out of the memo so they cannot leak
    into contexts where the cycle is absent.
    """

    def __init__(self, module: Module):
        self.module = module
        self._call_sites: dict[Function, list[Call]] = {}
        self._param_owner: dict[Parameter, Function] = {}
        self._memo: dict[tuple[Value, int], frozenset[int]] = {}
        self._in_progress: set[tuple[Value, int]] = set()
        for func in module.iter_functions():
            for param in func.params:
                self._param_owner[param] = func
            for inst in func.iter_instructions():
                if isinstance(inst, Call):
                    self._call_sites.setdefault(inst.callee, []).append(inst)

    def resolve(self, value: Value, depth: int = 0) -> set[int]:
        """Constant addresses ``value`` may evaluate to, or empty."""
        result, _clean = self._resolve(value, depth)
        return set(result)

    def _resolve(self, value: Value, depth: int) -> tuple[frozenset[int], bool]:
        key = (value, depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached, True
        if key in self._in_progress:
            return frozenset(), False  # cycle: unknown, and tainted
        self._in_progress.add(key)
        try:
            result, clean = self._resolve_inner(value, depth)
        finally:
            self._in_progress.discard(key)
        if clean:
            self._memo[key] = result
        return result, clean

    def _resolve_inner(self, value: Value,
                       depth: int) -> tuple[frozenset[int], bool]:
        if isinstance(value, ConstantPointer):
            return frozenset((value.address,)), True
        if isinstance(value, Constant):
            return frozenset((value.value,)), True
        if isinstance(value, Cast):
            return self._resolve(value.operands[0], depth)
        if isinstance(value, GEP):
            bases, clean = self._resolve(value.pointer, depth)
            if not bases:
                return frozenset(), clean
            offset = _constant_gep_offset(value)
            if offset is None:
                return frozenset(), clean
            return frozenset(base + offset for base in bases), clean
        if isinstance(value, BinOp) and value.op == "add":
            lhs, lclean = self._resolve(value.operands[0], depth)
            rhs, rclean = self._resolve(value.operands[1], depth)
            clean = lclean and rclean
            if lhs and rhs:
                return frozenset(a + b for a in lhs for b in rhs), clean
            return frozenset(), clean
        if isinstance(value, Load):
            pointer = value.pointer
            if isinstance(pointer, GlobalVariable) and pointer.is_const:
                init = pointer.initializer
                if isinstance(init, int):
                    return frozenset((init,)), True
            return frozenset(), True
        if isinstance(value, Parameter) and depth < _MAX_PARAM_DEPTH:
            return self._resolve_parameter(value, depth)
        return frozenset(), True

    def _resolve_parameter(self, value: Parameter,
                           depth: int) -> tuple[frozenset[int], bool]:
        """All-or-nothing caller contract: the parameter resolves only
        if *every* direct caller passing this argument resolves to
        constants; one unresolvable caller makes the whole parameter
        unknown (a partial address set would under-approximate the
        peripherals the function can touch — unsound for the MPU
        policy).  Callers that pass fewer arguments than ``index`` are
        skipped, not treated as unresolvable."""
        func = self._param_owner.get(value)
        if func is None:
            return frozenset(), True
        addresses: set[int] = set()
        clean = True
        for call in self._call_sites.get(func, ()):  # direct calls only
            if value.index < len(call.operands):
                resolved, sub_clean = self._resolve(
                    call.operands[value.index], depth + 1)
                clean = clean and sub_clean
                if not resolved:
                    return frozenset(), clean  # one unresolvable caller → unknown
                addresses |= resolved
        return frozenset(addresses), clean


def _constant_gep_offset(gep: GEP) -> Optional[int]:
    """Byte offset of a GEP with all-constant indices, else ``None``."""
    from ..ir.types import ArrayType, StructType

    pointee = gep.pointer.type.pointee
    indices = gep.indices
    first = indices[0]
    if not isinstance(first, Constant):
        return None
    offset = first.value * pointee.size
    current = pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            if not isinstance(index, Constant):
                return None
            offset += index.value * current.stride
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, Constant):
                return None
            offset += current.offset_of(index.value)
            current = current.field_type(index.value)
        else:
            return None
    return offset

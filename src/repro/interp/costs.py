"""Per-instruction cycle costs for the deterministic DWT counter.

Rough Cortex-M4 shape: single-cycle ALU, two-cycle memory accesses,
multi-cycle divide, pipeline-refilling branches/calls.  Absolute
numbers do not matter for the reproduction — only that baseline and
OPEC builds are charged identically for application code, with the
monitor's privileged work added on top (Figure 9 measures the ratio).
"""

from __future__ import annotations

DEFAULT_COST = 1

INSTRUCTION_COSTS = {
    "alloca": 1,
    "load": 2,
    "store": 2,
    "gep": 1,
    "binop": 1,
    "icmp": 1,
    "cast": 1,
    "select": 1,
    "call": 3,
    "icall": 4,
    "br": 2,
    "jump": 2,
    "ret": 3,
    "svc": 12,       # exception entry/exit
    "halt": 1,
    "unreachable": 1,
}

DIV_COST = 12  # udiv/sdiv/urem/srem

# Monitor work (privileged, Python-modelled) is charged explicitly.
# Switch and remap costs are *per enforcement backend* — the runtimes
# charge ``machine.enforcement.switch_base_cost`` /
# ``.region_switch_cost`` (see ``repro.hw.backend``); the legacy
# constants below equal the MPU backend's values and remain only as
# the documented reference point.
SWITCH_BASE_COST = 60          # SVC entry, context save/restore, MPU reload
SYNC_WORD_COST = 2             # ldr+str pair per synced 32-bit word
SANITIZE_CHECK_COST = 3        # one range check
STACK_RELOCATE_WORD_COST = 2   # ldr+str pair per relocated word
REGION_SWITCH_COST = 40        # MemManage-driven peripheral region swap
CORE_EMULATION_COST = 50       # BusFault-driven load/store emulation
MICRO_EMULATOR_COST = 60       # ACES' per-access stack micro-emulation

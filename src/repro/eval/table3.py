"""Table 3: efficiency of the indirect-call analysis (§6.5).

Per application: how many icalls the module has, how many the
points-to (Andersen/"SVF") analysis resolved, how long the analysis
took, how many fell back to type-based matching, and the average and
maximum number of targets per resolved icall.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import render_table
from .workloads import APP_NAMES, opec_artifacts


@dataclass
class Table3Row:
    app: str
    icalls: int
    svf_resolved: int
    solve_time_s: float
    type_resolved: int
    avg_targets: float
    max_targets: int


def compute_row(name: str) -> Table3Row:
    artifacts = opec_artifacts(name)
    graph = artifacts.callgraph
    counts = graph.target_counts()
    return Table3Row(
        app=name,
        icalls=graph.icall_count(),
        svf_resolved=graph.resolved_by("svf"),
        solve_time_s=artifacts.andersen.solve_time,
        type_resolved=graph.resolved_by("type"),
        avg_targets=(sum(counts) / len(counts)) if counts else 0.0,
        max_targets=max(counts, default=0),
    )


def compute_table(apps: tuple[str, ...] = APP_NAMES) -> list[Table3Row]:
    return [compute_row(name) for name in apps]


def render(rows: list[Table3Row]) -> str:
    return render_table(
        ["Application", "#Icall", "#SVF", "Time(s)", "#Type",
         "#Avg.", "#Max"],
        [
            (r.app, r.icalls, r.svf_resolved, f"{r.solve_time_s:.2f}",
             r.type_resolved, f"{r.avg_targets:.2f}", r.max_targets)
            for r in rows
        ],
        title="Table 3: efficiency of the icall analysis",
    )


def main() -> None:
    print(render(compute_table()))


if __name__ == "__main__":
    main()

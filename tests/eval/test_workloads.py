"""Tests for workload profiles and build/run caching."""

from repro.eval import workloads


def test_profiles_change_workload_scale():
    quick = workloads.build_app("PinLock", profile="quick")
    paper = workloads.build_app("PinLock", profile="paper")
    assert quick.module is not paper.module
    # Same structure, different stop conditions (rounds compiled into
    # main's loop bound).
    assert len(quick.specs) == len(paper.specs)


def test_builds_are_cached_per_profile():
    a = workloads.build_app("PinLock", profile="quick")
    b = workloads.build_app("PinLock", profile="quick")
    assert a is b
    artifacts_a = workloads.opec_artifacts("PinLock", profile="quick")
    artifacts_b = workloads.opec_artifacts("PinLock", profile="quick")
    assert artifacts_a is artifacts_b


def test_artifacts_share_the_app_module():
    app = workloads.build_app("PinLock", profile="quick")
    artifacts = workloads.opec_artifacts("PinLock", profile="quick")
    assert artifacts.module is app.module
    aces = workloads.aces_artifacts("PinLock", "ACES2", profile="quick")
    assert aces.module is app.module


def test_run_cache_returns_same_result():
    first = workloads.run_build("PinLock", "vanilla", profile="quick")
    second = workloads.run_build("PinLock", "vanilla", profile="quick")
    assert first is second


def test_clear_caches_resets():
    workloads.build_app("PinLock", profile="quick")
    workloads.clear_caches()
    rebuilt = workloads.build_app("PinLock", profile="quick")
    assert rebuilt is workloads.build_app("PinLock", profile="quick")


def test_active_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "paper")
    assert workloads.active_profile() == "paper"
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    assert workloads.active_profile() == "quick"


def test_repro_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert workloads.repro_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert workloads.repro_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert workloads.repro_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "bogus")
    assert workloads.repro_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "-3")
    assert workloads.repro_jobs() == 1


def test_compute_all_rows_sections_and_order():
    rows = workloads.compute_all_rows(jobs=1)
    assert set(rows) == {"table1", "figure9", "table2", "figure10",
                         "figure11", "table3"}
    assert [r.app for r in rows["table1"]] == \
        [*workloads.APP_NAMES, "Average"]
    assert [r.app for r in rows["table3"]] == list(workloads.APP_NAMES)


def test_compute_all_rows_parallel_merge_identical():
    """The REPRO_JOBS fan-out contract: a process-pool evaluation must
    merge into exactly the rows the serial path computes (row
    dataclasses compare by value, floats included)."""
    serial = workloads.compute_all_rows(jobs=1)
    parallel = workloads.compute_all_rows(jobs=2)
    assert serial == parallel

"""Operation partitioning (§4.3).

An *operation* is a logically independent task: a developer-chosen
entry function plus every function reachable from it in the sound call
graph, with DFS backtracking when another operation's entry is reached
(that subtree belongs to the other operation and calling it at runtime
triggers a switch).  ``main`` always forms the default operation.

Entry restrictions from the paper: an entry may not be variadic and may
not live inside an interrupt-handling routine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..analysis.callgraph import CallGraph
from ..analysis.resources import FunctionResources, ResourceAnalysis
from ..hw.board import Peripheral
from ..ir.function import Function
from ..ir.module import Module


class PartitionError(Exception):
    """An entry-function list violates the partitioning rules."""


@dataclass
class OperationSpec:
    """Developer input for one operation (Figure 5's "entry functions
    list & stack information").

    ``stack_info`` maps a pointer-typed parameter index of the entry
    function to the byte size of the buffer it points to, enabling the
    monitor's stack relocation (§5.2, Figure 8).
    """

    entry: str
    stack_info: dict[int, int] = field(default_factory=dict)


@dataclass
class PeripheralWindow:
    """A merged run of address-adjacent peripherals sharing one MPU
    region (§4.3's merge-by-ascending-address optimisation)."""

    base: int
    size: int
    peripherals: tuple[Peripheral, ...]

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass
class Operation:
    """One partitioned operation with its merged resource dependency."""

    index: int
    name: str
    entry: Function
    functions: set[Function]
    resources: FunctionResources
    stack_info: dict[int, int] = field(default_factory=dict)
    windows: list[PeripheralWindow] = field(default_factory=list)
    is_default: bool = False

    @property
    def accessible_globals(self):
        return self.resources.globals_all

    def accessible_global_bytes(self) -> int:
        return sum(g.size for g in self.resources.globals_all if not g.is_const)

    def __hash__(self) -> int:
        return self.index

    def __repr__(self) -> str:
        return (
            f"<Operation {self.index} @{self.entry.name}: "
            f"{len(self.functions)} funcs>"
        )


def merge_peripheral_windows(
    peripherals: Iterable[Peripheral],
) -> list[PeripheralWindow]:
    """Sort by start address and merge adjacent peripherals (§4.3)."""
    ordered = sorted(peripherals, key=lambda p: p.base)
    windows: list[PeripheralWindow] = []
    run: list[Peripheral] = []
    for peripheral in ordered:
        if run and peripheral.base == run[-1].end:
            run.append(peripheral)
        else:
            if run:
                windows.append(_window_from(run))
            run = [peripheral]
    if run:
        windows.append(_window_from(run))
    return windows


def _window_from(run: list[Peripheral]) -> PeripheralWindow:
    base = run[0].base
    return PeripheralWindow(
        base=base, size=run[-1].end - base, peripherals=tuple(run)
    )


def partition_operations(
    module: Module,
    graph: CallGraph,
    specs: Sequence[OperationSpec],
    resources: ResourceAnalysis,
) -> list[Operation]:
    """Partition ``module`` into operations per the developer's specs.

    Returns the default (``main``) operation first, then one operation
    per spec in order.
    """
    main = module.get_function("main")
    entry_funcs: list[Function] = []
    for spec in specs:
        func = module.get_function(spec.entry)
        if func.ftype.variadic:
            raise PartitionError(
                f"operation entry @{func.name} has variable-length arguments"
            )
        if func.is_interrupt_handler:
            raise PartitionError(
                f"operation entry @{func.name} is an interrupt handler"
            )
        if func is main:
            raise PartitionError("main is always the default operation")
        entry_funcs.append(func)
    if len(set(entry_funcs)) != len(entry_funcs):
        raise PartitionError("duplicate operation entries")

    # One frozen stop set shared by every query keeps the call graph's
    # per-(entry, stops) reachability cache hot across entries, and the
    # monitor/interrupt exclusion is computed once, not per operation.
    all_entries = frozenset(entry_funcs) | {main}
    excluded = {
        f for f in module.iter_functions()
        if f.is_monitor or f.is_interrupt_handler
    }
    operations: list[Operation] = []
    ordered = [(main, OperationSpec(entry="main"))] + list(zip(entry_funcs, specs))
    for index, (entry, spec) in enumerate(ordered):
        functions = graph.reachable_from(entry, stop_at=all_entries)
        functions -= excluded
        merged = FunctionResources()
        for func in functions:
            merged.merge(resources.function_resources(func))
        operation = Operation(
            index=index,
            name=entry.name,
            entry=entry,
            functions=functions,
            resources=merged,
            stack_info=dict(spec.stack_info),
            is_default=(entry is main),
        )
        operation.windows = merge_peripheral_windows(merged.peripherals)
        operations.append(operation)
    return operations

"""Operation partitioning and policy generation (§4.3)."""

from .operations import (
    Operation,
    OperationSpec,
    PartitionError,
    PeripheralWindow,
    merge_peripheral_windows,
    partition_operations,
)
from .policy import SystemPolicy, VariablePlacement, build_policy

__all__ = [
    "Operation", "OperationSpec", "PartitionError", "PeripheralWindow",
    "merge_peripheral_windows", "partition_operations",
    "SystemPolicy", "VariablePlacement", "build_policy",
]

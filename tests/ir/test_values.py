"""Unit tests for IR values, globals, and initializer encoding."""

import pytest

from repro.ir import (
    Constant,
    ConstantNull,
    ConstantPointer,
    GlobalVariable,
    StructType,
    I8,
    I16,
    I32,
    array,
    encode_initializer,
    ptr,
)


class TestConstant:
    def test_wraps_to_width(self):
        assert Constant(0x1FF, I8).value == 0xFF
        assert Constant(-1, I32).value == 0xFFFFFFFF

    def test_requires_int_type(self):
        with pytest.raises(TypeError):
            Constant(1, ptr(I8))

    def test_short(self):
        assert Constant(42).short() == "42"


class TestConstantPointer:
    def test_address_masked(self):
        cp = ConstantPointer(0x1_4001_1000, ptr(I32))
        assert cp.address == 0x40011000

    def test_short_hex(self):
        assert ConstantPointer(0x40011004, ptr(I32)).short() == "0x40011004"


class TestGlobalVariable:
    def test_value_is_pointer_typed(self):
        g = GlobalVariable("g", I32, 5)
        assert g.type == ptr(I32)
        assert g.value_type == I32
        assert g.size == 4

    def test_pointer_field_offsets_scalar(self):
        assert GlobalVariable("g", I32).pointer_field_offsets == []
        assert GlobalVariable("p", ptr(I8)).pointer_field_offsets == [0]

    def test_pointer_field_offsets_nested(self):
        inner = StructType("inner", [("n", I32), ("link", ptr(I8))])
        outer = StructType("outer", [("head", ptr(I8)), ("pair", inner)])
        g = GlobalVariable("g", array(outer, 2))
        # outer: head at 0, pair.link at 8; stride 12
        assert g.pointer_field_offsets == [0, 8, 12, 20]

    def test_sanitize_range_attribute(self):
        g = GlobalVariable("g", I32, 0, sanitize_range=(0, 1))
        assert g.sanitize_range == (0, 1)


class TestEncodeInitializer:
    def test_zero_fill(self):
        assert encode_initializer(None, array(I8, 4)) == b"\x00" * 4

    def test_int_little_endian(self):
        assert encode_initializer(0x01020304, I32) == b"\x04\x03\x02\x01"

    def test_int_for_aggregate_rejected(self):
        with pytest.raises(TypeError):
            encode_initializer(1, array(I32, 2))

    def test_bytes_padded(self):
        assert encode_initializer(b"ab", array(I8, 4)) == b"ab\x00\x00"

    def test_bytes_too_large(self):
        with pytest.raises(ValueError):
            encode_initializer(b"abcde", array(I8, 4))

    def test_list_of_ints_array(self):
        assert encode_initializer([1, 2], array(I16, 2)) == b"\x01\x00\x02\x00"

    def test_list_too_long(self):
        with pytest.raises(ValueError):
            encode_initializer([1, 2, 3], array(I32, 2))

    def test_struct_initializer(self):
        s = StructType("s", [("a", I8), ("b", I32)])
        blob = encode_initializer([0x11, 0x22334455], s)
        assert blob[0] == 0x11
        assert blob[4:8] == b"\x55\x44\x33\x22"
        assert len(blob) == s.size

    def test_nested_array_of_structs(self):
        s = StructType("s", [("a", I32)])
        blob = encode_initializer([[1], [2]], array(s, 3))
        assert blob == b"\x01\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00"

    def test_global_encode_matches(self):
        g = GlobalVariable("g", array(I8, 3), b"hi")
        assert g.encode_initializer() == b"hi\x00"

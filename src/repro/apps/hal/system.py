"""System HAL authored in IR: clocks, GPIO, SysTick ("rcc.c",
"gpio.c", "systick.c").

These drivers access their peripherals the way vendor HAL code does —
loads/stores through constant memory-mapped addresses — which is
exactly the pattern the compiler's backward slicing identifies (§4.2).
``systick_config`` touches the Private Peripheral Bus, so unprivileged
operations reach it only through the monitor's load/store emulation
(§5.2).
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I32, Module, VOID, define

# STM32 register offsets used below.
RCC_CR = 0x00
RCC_CFGR = 0x08
RCC_AHB1ENR = 0x30
RCC_APB1ENR = 0x40
RCC_APB2ENR = 0x44
GPIO_MODER = 0x00
GPIO_IDR = 0x10
GPIO_ODR = 0x14
GPIO_BSRR = 0x18
SYSTICK_BASE = 0xE000E010
SYSTICK_CSR = SYSTICK_BASE + 0x0
SYSTICK_RVR = SYSTICK_BASE + 0x4
SYSTICK_CVR = SYSTICK_BASE + 0x8


def add_system_hal(module: Module, board: Board) -> SimpleNamespace:
    rcc = board.peripheral("RCC").base

    # -- hal.c: framework state shared across every driver -------------
    system_core_clock = module.add_global("SystemCoreClock", I32, 16_000_000,
                                          source_file="rcc.c")
    uw_tick = module.add_global("uwTick", I32, 0, source_file="hal.c")
    error_code = module.add_global("hal_error_code", I32, 0,
                                   source_file="hal.c")

    error_handler, b = define(module, "Error_Handler", VOID, [I32],
                              source_file="hal.c")
    (code,) = error_handler.params
    b.store(code, error_code)
    b.halt(0xEE)  # a real firmware would spin; the simulation stops

    hal_inc_tick, b = define(module, "HAL_IncTick", VOID, [],
                             source_file="hal.c")
    b.store(b.add(b.load(uw_tick), 1), uw_tick)
    b.ret_void()

    hal_get_tick, b = define(module, "HAL_GetTick", I32, [],
                             source_file="hal.c")
    b.ret(b.load(uw_tick))

    hal_delay, b = define(module, "HAL_Delay", VOID, [I32],
                          source_file="hal.c")
    (ticks,) = hal_delay.params
    with b.for_range(0, ticks):
        b.call(hal_inc_tick)
    b.ret_void()

    # -- rcc.c -------------------------------------------------------
    osc_config, b = define(module, "HAL_RCC_OscConfig", VOID, [],
                           source_file="rcc.c")
    # Turn on HSE + PLL and spin on the ready flags (they read as set).
    cr = b.mmio(rcc + RCC_CR)
    b.store(b.or_(b.load(cr), (1 << 16) | (1 << 24)), cr)
    with b.while_loop(
        lambda: b.icmp("eq", b.and_(b.load(b.mmio(rcc + RCC_CR)), 1 << 17), 0)
    ):
        pass
    # PLL lock check: never fails in the model, but the error path is
    # real firmware shape (and real untaken-branch over-privilege).
    pll_ready = b.and_(b.load(b.mmio(rcc + RCC_CR)), 1 << 25)
    with b.if_then(b.icmp("eq", pll_ready, 0)):
        b.call(error_handler, 0x01)
    b.ret_void()

    clock_config, b = define(module, "HAL_RCC_ClockConfig", VOID, [],
                             source_file="rcc.c")
    b.store(0x0000240A, b.mmio(rcc + RCC_CFGR))
    b.store(168_000_000, system_core_clock)
    b.ret_void()

    system_clock_config, b = define(module, "SystemClock_Config", VOID, [],
                                    source_file="rcc.c")
    b.call(osc_config)
    b.call(clock_config)
    b.ret_void()

    rcc_enable_gpio, b = define(module, "RCC_Enable_GPIO", VOID, [I32],
                                source_file="rcc.c")
    (mask,) = rcc_enable_gpio.params
    enr = b.mmio(rcc + RCC_AHB1ENR)
    b.store(b.or_(b.load(enr), mask), enr)
    b.ret_void()

    rcc_enable_apb1, b = define(module, "RCC_Enable_APB1", VOID, [I32],
                                source_file="rcc.c")
    (mask,) = rcc_enable_apb1.params
    enr = b.mmio(rcc + RCC_APB1ENR)
    b.store(b.or_(b.load(enr), mask), enr)
    b.ret_void()

    rcc_enable_apb2, b = define(module, "RCC_Enable_APB2", VOID, [I32],
                                source_file="rcc.c")
    (mask,) = rcc_enable_apb2.params
    enr = b.mmio(rcc + RCC_APB2ENR)
    b.store(b.or_(b.load(enr), mask), enr)
    b.ret_void()

    # -- gpio.c -------------------------------------------------------
    gpio_funcs: dict[str, SimpleNamespace] = {}
    for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
        base = board.peripheral(port).base
        suffix = port[-1]

        init, b = define(module, f"GPIO{suffix}_Init_Pin", VOID, [I32, I32],
                         source_file="gpio.c")
        pin, mode = init.params
        moder = b.mmio(base + GPIO_MODER)
        shift = b.shl(pin, 1)
        cleared = b.and_(b.load(moder), b.xor(b.shl(3, shift), 0xFFFFFFFF))
        b.store(b.or_(cleared, b.shl(mode, shift)), moder)
        b.ret_void()

        write, b = define(module, f"GPIO{suffix}_Write_Pin", VOID, [I32, I32],
                          source_file="gpio.c")
        pin, state = write.params
        bsrr = b.mmio(base + GPIO_BSRR)
        is_set = b.icmp("ne", state, 0)
        with b.if_else(is_set) as otherwise:
            b.store(b.shl(1, pin), bsrr)
            otherwise()
            b.store(b.shl(b.shl(1, pin), 16), bsrr)
        b.ret_void()

        read, b = define(module, f"GPIO{suffix}_Read_Pin", I32, [I32],
                         source_file="gpio.c")
        (pin,) = read.params
        idr = b.load(b.mmio(base + GPIO_IDR))
        b.ret(b.and_(b.lshr(idr, pin), 1))

        gpio_funcs[port] = SimpleNamespace(init=init, write=write, read=read)

    # -- systick.c (core peripheral: PPB) -----------------------------
    systick_config, b = define(module, "SysTick_Config", VOID, [I32],
                               source_file="systick.c")
    (hz,) = systick_config.params
    reload = b.sub(b.udiv(b.load(system_core_clock), hz), 1)
    too_big = b.icmp("ugt", reload, 0xFFFFFF)
    with b.if_then(too_big):
        b.call(error_handler, 0x02)
    b.store(reload, b.mmio(SYSTICK_RVR))
    b.store(0, b.mmio(SYSTICK_CVR))
    b.store(7, b.mmio(SYSTICK_CSR))
    b.ret_void()

    delay_loop, b = define(module, "Delay_Loop", VOID, [I32],
                           source_file="systick.c")
    (ticks,) = delay_loop.params
    with b.for_range(0, ticks):
        pass
    b.ret_void()

    return SimpleNamespace(
        system_clock_config=system_clock_config,
        osc_config=osc_config,
        clock_config=clock_config,
        rcc_enable_gpio=rcc_enable_gpio,
        rcc_enable_apb1=rcc_enable_apb1,
        rcc_enable_apb2=rcc_enable_apb2,
        gpio=gpio_funcs,
        systick_config=systick_config,
        delay_loop=delay_loop,
        error_handler=error_handler,
        hal_inc_tick=hal_inc_tick,
        hal_get_tick=hal_get_tick,
        hal_delay=hal_delay,
        globals=SimpleNamespace(system_core_clock=system_core_clock,
                                uw_tick=uw_tick, error_code=error_code),
    )

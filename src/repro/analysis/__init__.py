"""OPEC-Compiler static analyses (§4.1–§4.2).

Call-graph construction with sound icall resolution (Andersen
points-to + type-based fallback), intra-procedural slicing, and
per-function resource-dependency analysis over globals and peripherals.
"""

from .andersen import AndersenResult, AndersenSolver, run_andersen
from .callgraph import CallGraph, IcallSite, build_call_graph
from .resources import FunctionResources, ResourceAnalysis
from .slicing import ConstantAddressResolver, forward_derived
from .typeanalysis import (
    TypeBasedResolver,
    address_taken_functions,
    signature_key,
    signatures_match,
)

__all__ = [
    "AndersenResult", "AndersenSolver", "run_andersen",
    "CallGraph", "IcallSite", "build_call_graph",
    "FunctionResources", "ResourceAnalysis",
    "ConstantAddressResolver", "forward_derived",
    "TypeBasedResolver", "address_taken_functions",
    "signature_key", "signatures_match",
]

"""Benchmark + regeneration of Figure 11 (execution-time
over-privilege, §6.4).

The timed quantity is the traced vanilla run (the paper's GDB
single-stepping equivalent); the printed series is ET per task under
OPEC and the three ACES strategies.
"""

from __future__ import annotations

import pytest

from repro.apps import ACES_APPS
from repro.eval import figure11
from repro.eval.figure11 import task_trace
from repro.eval.workloads import build_app


@pytest.mark.parametrize("app_name", ACES_APPS)
def test_figure11_trace(benchmark, app_name):
    figure11._trace_cache.pop(app_name, None)

    def traced_run():
        return task_trace(app_name)

    trace = benchmark.pedantic(traced_run, rounds=1, iterations=1)
    assert trace.executed


def test_print_figure11(benchmark):
    data = benchmark.pedantic(figure11.compute_figure, rounds=1, iterations=1)
    print()
    print(figure11.render(data))
    for entry in data:
        avg = lambda vs: sum(vs) / len(vs)
        opec_avg = avg(entry.et["OPEC"])
        worst = max(avg(entry.et[s]) for s in ("ACES1", "ACES2", "ACES3"))
        # Shape: OPEC mitigates ET; on average it never loses to the
        # worst ACES strategy (individual tasks may flip, as §6.4 notes).
        assert opec_avg <= worst
        # Sanity: the trace and the partitions saw the same module.
        assert any(v < 1.0 for v in entry.et["OPEC"])

"""Differential property tests: compiled blocks vs single-stepping.

The superinstruction compiler claims *bit-identity* with the reference
single-step interpreter: same halt code (or same terminal fault,
identically worded), same simulated cycles, same instruction count,
same :class:`MachineStats`, same final SRAM image.  Random programs
probe the claim where hand-written tests tend not to look — mixed
binop/icmp/select/cast chains over memory, division by runtime zeros,
armed SysTick delivering IRQs mid-block, loads and stores that fault —
and quantify it over all three enforcement backends, since the
compiled fast path binds each backend's ``fast_allows`` closure.
"""

from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro import run_image
from repro.hw import Machine, stm32f4_discovery
from repro.hw.backend import KNOWN_BACKENDS
from repro.hw.exceptions import MachineError
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I8, I32, VOID

WORD = 0xFFFFFFFF
u32 = st.integers(min_value=0, max_value=WORD)

BINOPS = list(ir.BINARY_OPS)
PREDS = list(ir.ICMP_PREDICATES)

op_steps = st.one_of(
    st.tuples(st.just("binop"), st.sampled_from(BINOPS)),
    st.tuples(st.just("icmp"), st.sampled_from(PREDS)),
    st.tuples(st.just("select"), st.sampled_from(PREDS)),
    st.tuples(st.just("truncext"), st.just("")),
)


@st.composite
def programs(draw):
    return {
        "seeds": draw(st.lists(u32, min_size=8, max_size=8)),
        "steps": draw(st.lists(op_steps, min_size=1, max_size=6)),
        "iterations": draw(st.integers(min_value=1, max_value=25)),
        "start": draw(u32),
        # 0 = SysTick disarmed; small reloads force IRQs mid-block.
        "reload": draw(st.sampled_from([0, 0, 67, 131])),
        # None = clean halt; otherwise a trailing access that faults
        # (unmapped space) or doesn't (SRAM), chosen adversarially.
        "probe": draw(st.sampled_from(
            [None, 0x60000000, 0x00000000, 0x20000000])),
        "probe_write": draw(st.booleans()),
    }


def _build_module(spec) -> ir.Module:
    module = ir.Module("differential")
    ticks = module.add_global("ticks", I32, 0)
    if spec["reload"]:
        _h, hb = ir.define(module, "SysTick_Handler", VOID, [],
                           irq_number=15)
        hb.store(hb.add(hb.load(ticks), 1), ticks)
        hb.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    arr = b.alloca(I32, 8)
    for j, seed in enumerate(spec["seeds"]):
        b.store(seed, b.gep(arr, j))
    acc_slot = b.alloca(I32)
    b.store(spec["start"], acc_slot)
    if spec["reload"]:
        b.store(spec["reload"], b.mmio(0xE000E014))
        b.store(7, b.mmio(0xE000E010))
    with b.for_range(0, spec["iterations"]) as load_i:
        acc = b.load(acc_slot)
        cell = b.gep(arr, b.and_(acc, 7))
        value = b.load(cell)
        for kind, arg in spec["steps"]:
            if kind == "binop":
                acc = b.binop(arg, acc, value)
            elif kind == "icmp":
                acc = b.add(b.zext(b.icmp(arg, acc, value)), value)
            elif kind == "select":
                acc = b.select(b.icmp(arg, acc, load_i()), acc, value)
            else:
                acc = b.zext(b.trunc(acc, I8))
        b.store(acc, cell)
        b.store(acc, acc_slot)
    final = b.add(b.load(acc_slot), b.load(ticks))
    if spec["probe"] is not None:
        if spec["probe_write"]:
            b.store(final, b.mmio(spec["probe"]))
        else:
            final = b.add(final, b.load(b.mmio(spec["probe"])))
    b.halt(final)
    return module


def _observe(module, block_compile) -> dict:
    """One run's complete simulated observable state."""
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=200_000,
                         block_compile=block_compile)
    try:
        outcome = ("halt", interp.run())
    except MachineError as error:
        outcome = (type(error).__name__, str(error))
    return {
        "outcome": outcome,
        "cycles": machine.cycles,
        "instructions": interp.instructions_executed,
        "stats": machine.stats.as_dict(),
        "sram": machine.read_bytes(machine.sram.base, machine.sram.size),
    }


@given(programs())
@settings(max_examples=40, deadline=None)
def test_compiled_matches_singlestep(spec):
    module = _build_module(spec)
    compiled = _observe(module, True)
    singlestep = _observe(module, False)
    assert compiled == singlestep


def _observe_backend(image, app, backend, block_compile) -> dict:
    try:
        result = run_image(image, setup=app.setup,
                           max_instructions=app.max_instructions,
                           backend=backend, block_compile=block_compile)
    except MachineError as error:
        return {"outcome": (type(error).__name__, str(error))}
    return {
        "outcome": ("halt", result.halt_code),
        "cycles": result.machine.cycles,
        "instructions": result.interpreter.instructions_executed,
        "stats": result.machine.stats.as_dict(),
        "switches": result.hooks.switch_count,
    }


def test_pinlock_opec_identical_on_every_backend():
    """End-to-end differential under real enforcement: operation
    switches, SVC dispatch, MemManage retries, SysTick — per backend."""
    from repro.eval.workloads import build_app, opec_artifacts

    app = build_app("PinLock", profile="quick")
    image = opec_artifacts("PinLock", profile="quick").image
    for backend in KNOWN_BACKENDS:
        compiled = _observe_backend(image, app, backend, True)
        singlestep = _observe_backend(image, app, backend, False)
        assert compiled == singlestep, backend

"""Surgical unit tests for DataSynchronizer and StackProtector."""

import pytest

import repro.ir as ir
from repro import build_opec
from repro.hw import Machine, SecurityAbort, stm32f4_discovery
from repro.ir import I32, VOID, ptr
from repro.partition import OperationSpec
from repro.runtime.stack import StackProtector
from repro.runtime.sync import DataSynchronizer


def _world(module_builder, specs):
    board = stm32f4_discovery()
    module = module_builder()
    artifacts = build_opec(module, board, specs)
    machine = Machine(board)
    artifacts.image.initialize_memory(machine)
    return artifacts, machine


def _shared_module():
    module = ir.Module("sync")
    shared = module.add_global("shared", I32, 7, sanitize_range=(0, 100))
    t1, b = ir.define(module, "t1", VOID, [])
    b.store(b.add(b.load(shared), 1), shared)
    b.ret_void()
    t2, b = ir.define(module, "t2", VOID, [])
    b.store(b.add(b.load(shared), 2), shared)
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    b.call(t1)
    b.call(t2)
    b.halt(b.load(shared))
    return module


SPECS = [OperationSpec("t1"), OperationSpec("t2")]


class TestWriteBackRefresh:
    def test_write_back_publishes_shadow(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        op1 = artifacts.policy.operation_by_entry("t1")
        shared = artifacts.module.get_global("shared")
        shadow = artifacts.image.shadow_address(op1, shared)
        public = artifacts.image.public_addresses[shared]
        machine.write_direct(shadow, 4, 55)
        sync.write_back(op1)
        assert machine.read_direct(public, 4) == 55

    def test_refresh_pulls_public(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        op2 = artifacts.policy.operation_by_entry("t2")
        shared = artifacts.module.get_global("shared")
        public = artifacts.image.public_addresses[shared]
        machine.write_direct(public, 4, 88)
        sync.refresh(op2)
        assert machine.read_direct(
            artifacts.image.shadow_address(op2, shared), 4) == 88

    def test_sync_is_idempotent(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        op1 = artifacts.policy.operation_by_entry("t1")
        shared = artifacts.module.get_global("shared")
        shadow = artifacts.image.shadow_address(op1, shared)
        machine.write_direct(shadow, 4, 9)
        sync.write_back(op1)
        first = machine.read_direct(
            artifacts.image.public_addresses[shared], 4)
        sync.write_back(op1)
        sync.refresh(op1)
        sync.refresh(op1)
        assert machine.read_direct(shadow, 4) == first == 9

    def test_sanitize_blocks_out_of_range(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        op1 = artifacts.policy.operation_by_entry("t1")
        shared = artifacts.module.get_global("shared")
        machine.write_direct(
            artifacts.image.shadow_address(op1, shared), 4, 101)
        with pytest.raises(SecurityAbort):
            sync.write_back(op1)
        # The public copy was not polluted.
        assert machine.read_direct(
            artifacts.image.public_addresses[shared], 4) == 7

    def test_relocation_table_points_at_active_shadow(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        shared = artifacts.module.get_global("shared")
        slot = artifacts.image.reloc_slots[shared]
        op1 = artifacts.policy.operation_by_entry("t1")
        op2 = artifacts.policy.operation_by_entry("t2")
        sync.update_relocation_table(op1)
        assert machine.read_direct(slot, 4) == \
            artifacts.image.shadow_address(op1, shared)
        sync.update_relocation_table(op2)
        assert machine.read_direct(slot, 4) == \
            artifacts.image.shadow_address(op2, shared)

    def test_slot_falls_back_to_public_for_non_accessor(self):
        artifacts, machine = _world(_shared_module, SPECS)
        sync = DataSynchronizer(machine, artifacts.image)
        shared = artifacts.module.get_global("shared")
        # Fabricate an operation view that does not access `shared`:
        # main accesses it here, so craft via a fresh module instead.
        module = ir.Module("aside")
        a = module.add_global("a", I32, 1)
        b_var = module.add_global("b_var", I32, 2)
        t1, b = ir.define(module, "t1", VOID, [])
        b.store(1, a)
        b.ret_void()
        t2, b = ir.define(module, "t2", VOID, [])
        b.store(2, a)
        b.store(2, b_var)
        b.ret_void()
        t3, b = ir.define(module, "t3", VOID, [])
        b.store(3, b_var)
        b.ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.call(t1)
        mb.call(t2)
        mb.call(t3)
        mb.halt(0)
        board = stm32f4_discovery()
        artifacts = build_opec(module, board, [
            OperationSpec("t1"), OperationSpec("t2"), OperationSpec("t3")])
        machine = Machine(board)
        artifacts.image.initialize_memory(machine)
        sync = DataSynchronizer(machine, artifacts.image)
        op1 = artifacts.policy.operation_by_entry("t1")
        sync.update_relocation_table(op1)
        # t1 does not access b_var: its slot points at the public copy.
        slot = artifacts.image.reloc_slots[module.get_global("b_var")]
        assert machine.read_direct(slot, 4) == \
            artifacts.image.public_addresses[module.get_global("b_var")]


class TestPointerRedirection:
    def _pointer_module(self):
        module = ir.Module("ptrs")
        target = module.add_global("target", I32, 42)
        holder = module.add_global("holder", ptr(I32))
        t1, b = ir.define(module, "t1", VOID, [])
        b.store(target, holder)   # holder := &target (reloc-resolved)
        b.store(1, target)
        b.ret_void()
        t2, b = ir.define(module, "t2", VOID, [])
        b.store(2, target)
        loaded = b.load(holder)
        b.store(5, loaded)  # through the (redirected) pointer: wins
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(t1)
        b.call(t2)
        b.halt(b.load(target))
        return module

    def test_pointer_field_retargeted_on_refresh(self):
        board = stm32f4_discovery()
        artifacts = build_opec(self._pointer_module(), board, SPECS)
        machine = Machine(board)
        artifacts.image.initialize_memory(machine)
        sync = DataSynchronizer(machine, artifacts.image)
        image = artifacts.image
        policy = artifacts.policy
        holder = artifacts.module.get_global("holder")
        target = artifacts.module.get_global("target")
        op1 = policy.operation_by_entry("t1")
        op2 = policy.operation_by_entry("t2")

        # Simulate: t1 stored the address of ITS shadow of `target`.
        machine.write_direct(image.shadow_address(op1, holder), 4,
                             image.shadow_address(op1, target))
        sync.write_back(op1)
        sync.refresh(op2)
        sync.redirect_pointers(op2)
        # t2's shadow of holder now points at t2's shadow of target.
        value = machine.read_direct(image.shadow_address(op2, holder), 4)
        assert value == image.shadow_address(op2, target)

    def test_end_to_end_pointer_global_behaviour(self):
        from repro import build_vanilla, run_image

        board = stm32f4_discovery()
        vanilla = run_image(
            build_vanilla(self._pointer_module(), board))
        artifacts = build_opec(self._pointer_module(), board, SPECS)
        opec = run_image(artifacts.image)
        assert opec.halt_code == vanilla.halt_code == 5


class TestStackProtectorUnit:
    def test_boundary_and_mask_roundtrip(self):
        artifacts, machine = _world(_shared_module, SPECS)
        protector = StackProtector(machine, artifacts.image)
        top = artifacts.image.stack_top
        sub = artifacts.image.subregion_size
        assert protector.boundary_below(top - 1) == top - sub
        assert protector.mask_for(top) == 0
        assert protector.mask_for(artifacts.image.stack_base) == 0xFF

    def test_relocate_and_copy_back(self):
        artifacts, machine = _world(_shared_module, SPECS)
        protector = StackProtector(machine, artifacts.image)
        op1 = artifacts.policy.operation_by_entry("t1")
        op1.stack_info = {0: 8}
        source = artifacts.image.stack_top - 64
        machine.write_bytes(source, b"ABCDEFGH")
        args, new_sp, relocations = protector.relocate_arguments(
            op1, [source], artifacts.image.stack_top - 32)
        assert args[0] != source
        assert machine.read_bytes(args[0], 8) == b"ABCDEFGH"
        machine.write_bytes(args[0], b"ZYXWVUTS")
        protector.copy_back(relocations)
        assert machine.read_bytes(source, 8) == b"ZYXWVUTS"

"""Unit tests for slicing and the resource-dependency analysis."""

import repro.ir as ir
from repro.analysis import ConstantAddressResolver, ResourceAnalysis, forward_derived
from repro.hw import stm32f4_discovery
from repro.ir import I8, I32, VOID, ptr

RCC_BASE = 0x40023800
GPIOA_BASE = 0x40020000
SYSTICK = 0xE000E010


class TestForwardDerived:
    def test_follows_gep_cast_chains(self):
        module = ir.Module("m")
        g = module.add_global("g", ir.array(I32, 4))
        _f, b = ir.define(module, "f", VOID, [])
        p = b.gep(g, 0, 1)
        q = b.bitcast(p, ptr(I8))
        r = b.gep(q, 2)
        b.ret_void()
        derived = forward_derived(module.get_function("f"), {g})
        assert {p, q, r} <= derived

    def test_unrelated_values_excluded(self):
        module = ir.Module("m")
        g = module.add_global("g", I32)
        _f, b = ir.define(module, "f", VOID, [])
        other = b.alloca(I32)
        p = b.gep(other, 0)
        b.ret_void()
        derived = forward_derived(module.get_function("f"), {g})
        assert p not in derived


class TestConstantAddressResolver:
    def test_direct_mmio(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "f", VOID, [])
        p = b.mmio(RCC_BASE + 0x30)
        b.store(1, p)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == {RCC_BASE + 0x30}

    def test_gep_offset_from_constant_base(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "f", VOID, [])
        base = b.mmio(GPIOA_BASE, ir.array(I32, 16))
        p = b.gep(base, 0, 5)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == {GPIOA_BASE + 20}

    def test_inttoptr_constant(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "f", VOID, [])
        p = b.inttoptr(SYSTICK, I32)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == {SYSTICK}

    def test_parameter_resolved_through_call_sites(self):
        module = ir.Module("m")
        write_reg, wb = ir.define(module, "write_reg", VOID, [I32, I32])
        addr, value = write_reg.params
        p = wb.inttoptr(addr, I32)
        wb.store(value, p)
        wb.ret_void()
        _f, b = ir.define(module, "f", VOID, [])
        b.call(write_reg, RCC_BASE, 1)
        b.call(write_reg, GPIOA_BASE, 2)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == {RCC_BASE, GPIOA_BASE}

    def test_parameter_mixed_callers_all_or_nothing(self):
        """The documented contract: one unresolvable caller makes the
        whole parameter unknown — addresses already collected from the
        resolvable caller must NOT leak out as a partial answer."""
        module = ir.Module("m")
        write_reg, wb = ir.define(module, "write_reg", VOID, [I32])
        p = wb.inttoptr(write_reg.params[0], I32)
        wb.store(0, p)
        wb.ret_void()
        _f, b = ir.define(module, "f", VOID, [I32])
        b.call(write_reg, RCC_BASE)                # resolvable caller
        b.call(write_reg, b.add(_f.params[0], 4))  # dynamic caller
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == set()

    def test_parameter_resolution_memoized_and_stable(self):
        """Memoization must not change answers: repeated resolutions
        (warm cache) and a fresh resolver agree, for both the fully
        resolvable and the mixed case."""
        module = ir.Module("m")
        write_reg, wb = ir.define(module, "write_reg", VOID, [I32, I32])
        addr, value = write_reg.params
        p = wb.inttoptr(addr, I32)
        wb.store(value, p)
        wb.ret_void()
        _f, b = ir.define(module, "f", VOID, [])
        b.call(write_reg, RCC_BASE, 1)
        b.call(write_reg, GPIOA_BASE, 2)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        first = resolver.resolve(p)
        second = resolver.resolve(p)
        assert first == second == {RCC_BASE, GPIOA_BASE}
        assert ConstantAddressResolver(module).resolve(p) == first

    def test_parameter_with_unknown_caller_unresolved(self):
        module = ir.Module("m")
        write_reg, wb = ir.define(module, "write_reg", VOID, [I32])
        p = wb.inttoptr(write_reg.params[0], I32)
        wb.store(0, p)
        wb.ret_void()
        _f, b = ir.define(module, "f", VOID, [I32])
        b.call(write_reg, b.add(_f.params[0], 4))  # dynamic address
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(p) == set()

    def test_const_global_handle(self):
        """HAL pattern: a const global holds the peripheral base."""
        module = ir.Module("m")
        handle = module.add_global("uart_base", I32, RCC_BASE, is_const=True)
        _f, b = ir.define(module, "f", VOID, [])
        loaded = b.load(handle)
        b.ret_void()
        resolver = ConstantAddressResolver(module)
        assert resolver.resolve(loaded) == {RCC_BASE}


class TestResourceAnalysis:
    def _analyze(self, module, name):
        board = stm32f4_discovery()
        analysis = ResourceAnalysis(module, board)
        return analysis.function_resources(module.get_function(name))

    def test_direct_global_access(self, mini_module):
        res = self._analyze(mini_module, "task_a")
        names = {g.name for g in res.globals_direct}
        assert names == {"counter", "secret"}

    def test_gep_derived_access_attributed_to_root(self, mini_module):
        res = self._analyze(mini_module, "task_b")
        names = {g.name for g in res.globals_direct}
        assert "blob" in names

    def test_indirect_access_via_parameter(self):
        module = ir.Module("m")
        g = module.add_global("g", I32)
        sink, sb = ir.define(module, "sink", VOID, [ptr(I32)])
        sb.store(9, sink.params[0])
        sb.ret_void()
        _f, b = ir.define(module, "f", VOID, [])
        b.call(sink, g)
        b.ret_void()
        res = self._analyze(module, "sink")
        assert g in res.globals_indirect

    def test_peripheral_classification(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "f", VOID, [])
        b.store(1, b.mmio(RCC_BASE))        # general peripheral
        b.store(2, b.mmio(SYSTICK + 4))      # core peripheral
        b.ret_void()
        res = self._analyze(module, "f")
        assert {p.name for p in res.peripherals} == {"RCC"}
        assert {p.name for p in res.core_peripherals} == {"SysTick"}

    def test_sram_constant_not_a_peripheral(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "f", VOID, [])
        b.store(1, b.inttoptr(0x20000100, I32))
        b.ret_void()
        res = self._analyze(module, "f")
        assert res.peripherals == set()

    def test_declaration_has_empty_resources(self):
        module = ir.Module("m")
        module.declare_function("ext", ir.FunctionType(VOID, []))
        res = self._analyze(module, "ext")
        assert res.globals_all == set()
        assert res.peripherals == set()

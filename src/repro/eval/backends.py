"""Comparative enforcement-backend matrix.

Runs every application's OPEC build once per enforcement backend
(ARMv7-M MPU, RISC-V PMP adapter, Complets-style permission overlay)
and reports, side by side:

* **runtime overhead** versus the unprotected vanilla baseline —
  vanilla cycles are backend-independent (enforcement is never turned
  on), so the baseline is pinned to the default MPU backend and every
  backend's overhead is measured against the *same* denominator;
* **switch cost** — how many operation switches happened (identical
  across backends: the policy, not the substrate, decides where
  switches go) and what each one cost on that substrate, from the
  monitor's ``monitor.switch_cycles`` histogram;
* **enforcement traffic** — MemManage faults taken and peripheral
  window swaps performed, which must agree across backends for the
  same firmware (a divergence means an arbitration bug, which is
  exactly what the differential property tests pin down);
* **over-privilege** — the mean per-operation PT ratio (Eq. 1).  PT is
  a property of the *policy*, not of the enforcement substrate, so
  equal columns are the expected result; the matrix makes that
  invariance (and the differing switch costs) visible.

Row order is fixed — apps in :data:`APP_NAMES` order, backends in
:data:`KNOWN_BACKENDS` order, per-backend ``Average`` rows last — so
the rendered report is byte-deterministic and safe to commit under
``results/``.  With ``REPRO_JOBS`` > 1 the (app, backend) cells are
computed concurrently in a process pool, sharing the on-disk artifact
store; the merged output is identical to the serial path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from ..hw.backend import KNOWN_BACKENDS
from .workloads import APP_NAMES, active_profile, repro_jobs, run_build


@dataclass
class BackendRow:
    """One (application, backend) cell of the comparison matrix."""

    app: str
    backend: str
    cycles: int
    runtime_pct: float      # overhead vs the shared vanilla baseline
    switches: int           # operation switches (call direction)
    switch_cycles: int      # total cycles spent in switches
    switch_avg: float       # mean cycles per switch on this substrate
    memmanage_faults: int
    region_swaps: int       # peripheral-window MPU/overlay swaps
    pt_avg: float           # mean per-operation PT ratio (Eq. 1)


def compute_cell(name: str, backend: str,
                 profile: Optional[str] = None) -> BackendRow:
    """One app under one backend, with the shared MPU-vanilla baseline."""
    from . import figure10

    result = run_build(name, "opec", profile=profile, backend=backend)
    baseline = run_build(name, "vanilla", profile=profile, backend="mpu")
    hist = result.machine.metrics.histogram("monitor.switch_cycles")
    stats = result.machine.stats
    pt = figure10.opec_pt_values(name)
    return BackendRow(
        app=name,
        backend=backend,
        cycles=result.cycles,
        runtime_pct=(result.cycles / baseline.cycles - 1) * 100.0,
        switches=hist.count,
        switch_cycles=hist.total,
        switch_avg=hist.mean,
        memmanage_faults=stats.memmanage_faults,
        region_swaps=stats.peripheral_region_switches,
        pt_avg=sum(pt) / len(pt) if pt else 1.0,
    )


def _cell_worker(job: tuple[str, str, str]) -> BackendRow:
    """Process-pool entry point: pin the profile, compute one cell.

    ``REPRO_BACKEND`` is deliberately *not* exported here — the
    backend is passed explicitly per cell, and the shared vanilla
    baseline is always keyed to "mpu" regardless of ambient state.
    """
    name, profile, backend = job
    os.environ["REPRO_PROFILE"] = profile
    return compute_cell(name, backend, profile)


def _averages(rows: list[BackendRow],
              backends: Sequence[str]) -> list[BackendRow]:
    averages = []
    for backend in backends:
        cells = [r for r in rows if r.backend == backend]
        if not cells:
            continue
        n = len(cells)
        averages.append(BackendRow(
            app="Average",
            backend=backend,
            cycles=sum(r.cycles for r in cells),
            runtime_pct=sum(r.runtime_pct for r in cells) / n,
            switches=sum(r.switches for r in cells),
            switch_cycles=sum(r.switch_cycles for r in cells),
            switch_avg=sum(r.switch_avg for r in cells) / n,
            memmanage_faults=sum(r.memmanage_faults for r in cells),
            region_swaps=sum(r.region_swaps for r in cells),
            pt_avg=sum(r.pt_avg for r in cells) / n,
        ))
    return averages


def compute_matrix(apps: Sequence[str] = APP_NAMES,
                   backends: Sequence[str] = KNOWN_BACKENDS,
                   jobs: Optional[int] = None) -> list[BackendRow]:
    """All (app, backend) cells plus per-backend ``Average`` rows."""
    jobs = repro_jobs() if jobs is None else max(1, jobs)
    pairs = [(name, backend) for name in apps for backend in backends]
    if jobs > 1 and len(pairs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        profile = active_profile()
        with ProcessPoolExecutor(max_workers=min(jobs, len(pairs))) as pool:
            rows = list(pool.map(
                _cell_worker,
                [(name, profile, backend) for name, backend in pairs]))
    else:
        rows = [compute_cell(name, backend) for name, backend in pairs]
    return rows + _averages(rows, backends)


# ``repro eval backends`` dispatches through the same
# compute_table/render shape as the table modules.
def compute_table(apps: Sequence[str] = APP_NAMES) -> list[BackendRow]:
    return compute_matrix(apps)


def render(rows: list[BackendRow]) -> str:
    lines = [
        "Enforcement-backend comparison — runtime overhead, switch "
        "cost, over-privilege",
        f"{'App':12s} {'Backend':8s} {'Cycles':>12s} {'Overhd%':>8s} "
        f"{'Switches':>8s} {'SwCycles':>10s} {'SwAvg':>8s} "
        f"{'Faults':>7s} {'Swaps':>6s} {'PT(avg)':>8s}",
    ]
    previous_app = None
    for row in rows:
        if previous_app is not None and row.app != previous_app:
            lines.append("")
        previous_app = row.app
        lines.append(
            f"{row.app:12s} {row.backend:8s} {row.cycles:>12d} "
            f"{row.runtime_pct:>8.3f} {row.switches:>8d} "
            f"{row.switch_cycles:>10d} {row.switch_avg:>8.1f} "
            f"{row.memmanage_faults:>7d} {row.region_swaps:>6d} "
            f"{row.pt_avg:>8.3f}")
    lines.append("")
    lines.append(
        "PT and enforcement traffic are policy properties — equal "
        "across backends by construction; switch cost is the "
        "substrate's (base + per-region) model.")
    return "\n".join(lines)

"""IR interpreter: executes a linked firmware image on the machine.

The interpreter is the stand-in for the Cortex-M4 pipeline: it walks
basic blocks, keeps virtual registers per frame, maintains the stack
pointer inside simulated SRAM, charges cycles to the machine's DWT
counter, and — critically for OPEC — performs every memory access
through :class:`repro.hw.machine.Machine`, so the MPU and privilege
checks apply exactly as on hardware.

Faults raised mid-instruction are routed to the build's
:class:`~repro.interp.hooks.RuntimeHooks` at the privileged level and
the instruction is retried when the handler fixed things up — the same
fault-driven control flow the paper's monitor uses for MPU-region
virtualisation and core-peripheral emulation (§5.2).

Dispatch is table-driven: each instruction object caches its bound
handler and precomputed cycle cost in ``_hot`` on first execution, so
the per-step work is one dict-free tuple unpack instead of an
isinstance chain plus a cost lookup.  Loads and stores attempt the
machine access directly and only enter the closure-building
fault-retry loop after a fault has actually been raised; the common
path allocates nothing.  None of this changes *what* is charged — the
DWT cycle counter and every :class:`~repro.hw.machine.MachineStats`
counter stay bit-identical to the reference semantics (see DESIGN.md,
"Performance & determinism").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hw.exceptions import (
    BusFault,
    HardFault,
    MachineError,
    MachineHalt,
    MemManageFault,
)
from ..hw.machine import Machine
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
)
from ..ir.types import ArrayType, IntType, StructType
from ..ir.values import (
    Constant,
    ConstantNull,
    ConstantPointer,
    GlobalVariable,
    Parameter,
    Value,
)
from ..obs.events import (
    HALT as EV_HALT,
    IRQ as EV_IRQ,
    SVC as EV_SVC,
    SVC_ENTER as EV_SVC_ENTER,
    SVC_RETURN as EV_SVC_RETURN,
)
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import attach_crash_context
from .blockcompile import block_compile_enabled, compile_block
from .closurecache import (
    note_compiled as _cache_note_compiled,
    preload as _cache_preload,
    save as _cache_save,
)
from .costs import DEFAULT_COST, DIV_COST, INSTRUCTION_COSTS
from .hooks import RuntimeHooks
from .tracefuse import compile_trace, trace_fuse_enabled, trace_threshold

_WORD = 0xFFFFFFFF
_MAX_FAULT_RETRIES = 16
_DIV_OPS = ("udiv", "sdiv", "urem", "srem")


class ExecutionLimitExceeded(HardFault):
    """The instruction budget ran out (firmware likely spinning)."""


def _to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _trunc_div(sa: int, sb: int) -> int:
    """C-style (truncating) signed division, exact by construction.

    Python's ``//`` floors; hardware ``sdiv`` truncates toward zero.
    Going through ``abs`` keeps the arithmetic pure-integer — no float
    round-trip that loses precision past 53 bits.
    """
    q = abs(sa) // abs(sb)
    return q if (sa < 0) == (sb < 0) else -q


@dataclass
class Frame:
    """One activation record."""

    function: Function
    block: BasicBlock
    index: int = 0
    regs: dict[Value, int] = field(default_factory=dict)
    sp_entry: int = 0
    switched: bool = False
    is_irq: bool = False
    call_site: Optional[Instruction] = None  # caller's call instruction


class Interpreter:
    """Executes a linked image until ``halt`` or a terminal fault."""

    def __init__(
        self,
        machine: Machine,
        image,
        hooks: Optional[RuntimeHooks] = None,
        max_instructions: int = 100_000_000,
        block_compile: Optional[bool] = None,
        trace_fuse: Optional[bool] = None,
    ):
        self.machine = machine
        self.image = image
        self.hooks = hooks or RuntimeHooks()
        self.max_instructions = max_instructions
        self.frames: list[Frame] = []
        self.sp = image.stack_top
        self.instructions_executed = 0
        self.halt_code: Optional[int] = None
        self._irq_depth = 0
        # Superinstruction execution (``None`` → REPRO_BLOCKCOMPILE,
        # default on).  Compilation activity is counted on the
        # interpreter's own registry, NOT ``machine.metrics``: the
        # machine-side snapshot must stay byte-identical with block
        # compilation on and off.
        if block_compile is None:
            block_compile = block_compile_enabled()
        self.block_compile = bool(block_compile)
        # Trace fusion rides on top of block compilation (its fallback
        # tier): ``None`` → REPRO_TRACEFUSE, default on, and forced
        # off whenever block compilation itself is off.
        if trace_fuse is None:
            trace_fuse = self.block_compile and trace_fuse_enabled()
        self.trace_fuse = self.block_compile and bool(trace_fuse)
        self._trace_threshold = trace_threshold() if self.trace_fuse else 0
        self.compile_metrics = MetricsRegistry()
        self._n_blocks_compiled = self.compile_metrics.counter(
            "blockcompile.blocks_compiled")
        self._n_compile_errors = self.compile_metrics.counter(
            "blockcompile.compile_errors")
        self._n_block_entries = self.compile_metrics.counter(
            "blockcompile.block_entries")
        self._n_fallback_steps = self.compile_metrics.counter(
            "blockcompile.fallback_steps")
        self._n_traces_compiled = self.compile_metrics.counter(
            "tracefuse.traces_compiled")
        self._n_trace_rejects = self.compile_metrics.counter(
            "tracefuse.trace_rejects")
        self._n_trace_entries = self.compile_metrics.counter(
            "tracefuse.trace_entries")
        self._n_cache_blocks_loaded = self.compile_metrics.counter(
            "closurecache.blocks_loaded")
        self._n_cache_traces_loaded = self.compile_metrics.counter(
            "closurecache.traces_loaded")
        self._n_cache_saves = self.compile_metrics.counter(
            "closurecache.saves")
        if self.block_compile:
            # Warm-start from the artifact store: cached closures land
            # on the shared IR blocks, so the first interpreter of a
            # module pays the (pickle) load and every later one — and
            # every batch lane — starts warm for free.
            loaded_blocks, loaded_traces = _cache_preload(image.module)
            self._n_cache_blocks_loaded.value += loaded_blocks
            self._n_cache_traces_loaded.value += loaded_traces
        # Optional function-granularity trace (GDB single-step stand-in,
        # §6.4): the evaluation harness records executed functions per task.
        self.on_function_enter: Optional[Callable[[Function], None]] = None
        self.on_function_exit: Optional[Callable[[Function], None]] = None

    # -- public API ----------------------------------------------------

    def run(self, entry: str = "main", args: tuple[int, ...] = ()) -> int:
        """Reset the system, run ``entry``, return the halt code."""
        self.hooks.on_reset(self)
        self.call_function(self.image.module.get_function(entry), list(args))
        return self.resume()

    def resume(self) -> int:
        """Execute until halt; returns the firmware's halt code."""
        machine = self.machine
        try:
            if self.block_compile:
                self._run_compiled()
            else:
                while self.frames:
                    self.step()
        except MachineHalt as halt:
            return self._finish_halt(halt.code, f"halt({halt.code})")
        except MachineError as error:
            # Terminal fault: dump the flight-recorder tail onto the
            # exception so the failure window survives the crash.
            attach_crash_context(error, machine.recorder, machine.cycles)
            raise
        # ``main`` returned without halting: treat as a clean stop.
        return self._finish_halt(0, "main-return")

    def start(self, entry: str = "main", args: tuple[int, ...] = ()) -> None:
        """Reset and stage ``entry`` without executing anything.

        Incremental counterpart of :meth:`run` for callers that drive
        execution themselves via :meth:`advance` (the batch runner).
        """
        self.hooks.on_reset(self)
        self.call_function(self.image.module.get_function(entry), list(args))

    def advance(self) -> bool:
        """Execute one scheduling quantum; ``False`` once halted.

        A quantum is one compiled-block entry — or one reference
        ``step()`` on the fallback paths (pending IRQ boundary, IRQ
        window, uncompilable block, block compilation disabled) — so
        the batch runner round-robins lanes at block granularity.
        Halt handling matches :meth:`resume` exactly; terminal faults
        propagate with crash context attached.
        """
        machine = self.machine
        if not self.frames:
            if self.halt_code is None:
                self._finish_halt(0, "main-return")
            return False
        try:
            if (self.block_compile and not machine.pending_irqs
                    and self._irq_depth == 0):
                frame = self.frames[-1]
                block = frame.block
                entered_trace = False
                if (self.trace_fuse and frame.index == 0
                        and not machine._systick_armed):
                    try:
                        tr = block._trace
                    except AttributeError:
                        tr = block._trace = 0
                    if tr is not None:
                        if tr.__class__ is int:
                            tr += 1
                            if tr >= self._trace_threshold:
                                tr = self._compile_trace(block)
                            else:
                                block._trace = tr
                                tr = None
                        if tr is not None and tr(self, frame, machine):
                            self._n_trace_entries.value += 1
                            entered_trace = True
                if not entered_trace:
                    try:
                        fn = block._compiled
                    except AttributeError:
                        fn = self._compile(block)
                    if fn is None:
                        self._n_fallback_steps.value += 1
                        self.step()
                    else:
                        self._n_block_entries.value += 1
                        fn(self, frame, machine, frame.index)
            else:
                if self.block_compile:
                    self._n_fallback_steps.value += 1
                self.step()
        except MachineHalt as halt:
            self._finish_halt(halt.code, f"halt({halt.code})")
            return False
        except MachineError as error:
            attach_crash_context(error, machine.recorder, machine.cycles)
            raise
        if not self.frames:
            self._finish_halt(0, "main-return")
            return False
        return True

    def _finish_halt(self, code: int, label: str) -> int:
        """Record the halt event and code (shared by all run modes)."""
        self.halt_code = code
        machine = self.machine
        recorder = machine.recorder
        if recorder is not None:
            recorder.instant(EV_HALT, label, machine.cycles,
                             args={"code": code})
        if self.block_compile and _cache_save(self.image.module):
            self._n_cache_saves.value += 1
        return code

    def _run_compiled(self) -> None:
        """The superinstruction main loop.

        One compiled-closure call per basic block; every tricky
        boundary falls back to the unmodified :meth:`step`:

        * a pending IRQ with no handler active — ``step`` pops exactly
          one IRQ and then executes exactly one instruction, and that
          pop-one/execute-one interleaving (a masked pop still spends
          the boundary) must stay bit-exact, so the reference code
          performs it;
        * anywhere inside an IRQ window (``_irq_depth > 0``);
        * blocks the compiler rejected (``_compiled is None``).

        Compiled functions are therefore only entered with no pending
        IRQs and no active handler, and return whenever that changes.
        """
        frames = self.frames
        machine = self.machine
        pending = machine.pending_irqs
        step = self.step
        entries = self._n_block_entries
        fallbacks = self._n_fallback_steps
        trace_fuse = self.trace_fuse
        threshold = self._trace_threshold
        trace_entries = self._n_trace_entries
        while frames:
            if (pending and self._irq_depth == 0) or self._irq_depth > 0:
                fallbacks.value += 1
                step()
                continue
            frame = frames[-1]
            block = frame.block
            # Tier 3: a hot block entered at index 0 with SysTick
            # disarmed may anchor a fused loop trace.  ``_trace`` is
            # tri-state on the IR block: an int heat counter, the
            # compiled closure, or None (rejected).  The closure
            # returns truthy when it committed progress; falsy means
            # it bailed before executing anything, so fall through to
            # the per-block tier below.
            if (trace_fuse and frame.index == 0
                    and not machine._systick_armed):
                try:
                    tr = block._trace
                except AttributeError:
                    tr = block._trace = 0
                if tr is not None:
                    if tr.__class__ is int:
                        tr += 1
                        if tr >= threshold:
                            tr = self._compile_trace(block)
                        else:
                            block._trace = tr
                            tr = None
                    if tr is not None and tr(self, frame, machine):
                        trace_entries.value += 1
                        continue
            try:
                fn = block._compiled
            except AttributeError:
                fn = self._compile(block)
            if fn is None:
                fallbacks.value += 1
                step()
                continue
            entries.value += 1
            fn(self, frame, machine, frame.index)

    def _compile(self, block: BasicBlock):
        """First execution of ``block``: build (or fail) its closure."""
        fn = compile_block(block)
        if fn is None:
            self._n_compile_errors.value += 1
        else:
            self._n_blocks_compiled.value += 1
        _cache_note_compiled(self.image.module)
        return fn

    def _compile_trace(self, block: BasicBlock):
        """``block`` went hot: build (or reject) its loop trace."""
        fn = compile_trace(block)
        if fn is None:
            self._n_trace_rejects.value += 1
        else:
            self._n_traces_compiled.value += 1
        _cache_note_compiled(self.image.module)
        return fn

    def call_function(self, func: Function, args: list[int],
                      switched: bool = False,
                      call_site: Optional[Instruction] = None) -> None:
        """Push a new frame for ``func`` with evaluated ``args``."""
        if func.is_declaration:
            raise HardFault(f"call to undefined function @{func.name}")
        regs: dict[Value, int] = {}
        for param, value in zip(func.params, args):
            regs[param] = value & _WORD
        frame = Frame(
            function=func,
            block=func.entry_block,
            regs=regs,
            sp_entry=self.sp,
            switched=switched,
            call_site=call_site,
        )
        self.frames.append(frame)
        if self.on_function_enter is not None:
            self.on_function_enter(func)

    # -- core loop ------------------------------------------------------

    def step(self) -> None:
        machine = self.machine
        if machine.pending_irqs and self._irq_depth == 0:
            self._dispatch_irq(machine.pending_irqs.popleft())
        frame = self.frames[-1]
        instructions = frame.block.instructions
        index = frame.index
        if index >= len(instructions):
            raise HardFault(
                f"fell off block {frame.block.name} in @{frame.function.name}"
            )
        inst = instructions[index]
        self.instructions_executed += 1
        if self.instructions_executed > self.max_instructions:
            raise ExecutionLimitExceeded(
                f"instruction budget exceeded in @{frame.function.name}"
            )
        try:
            handler, cost = inst._hot
        except AttributeError:
            handler, cost = _bind_hot(inst)
        machine.consume(cost)
        handler(self, frame, inst)

    def _dispatch_irq(self, number: int) -> None:
        """Exception entry: run a handler at the privileged level.

        Handlers with no registered vector are dropped (masked).  No
        preemption nesting: one handler runs to completion.
        """
        handler = self.image.irq_handlers.get(number)
        if handler is None or handler.is_declaration:
            return
        recorder = self.machine.recorder
        if recorder is not None:
            recorder.begin(EV_IRQ, handler.name, self.machine.cycles,
                           args={"number": number})
        self.machine.consume(INSTRUCTION_COSTS["svc"])  # exception entry
        self.machine.privileged = True
        self._irq_depth += 1
        frame = Frame(
            function=handler,
            block=handler.entry_block,
            sp_entry=self.sp,
            is_irq=True,
        )
        self.frames.append(frame)
        if self.on_function_enter is not None:
            self.on_function_enter(handler)

    # -- operand evaluation --------------------------------------------

    def eval(self, frame: Frame, value: Value) -> int:
        # Virtual registers (instruction results / parameters) dominate
        # operand traffic: try the frame's register file first.
        reg = frame.regs.get(value)
        if reg is not None:
            return reg
        cls = value.__class__
        if cls is Constant:
            # Masked defensively: a transformation pass that folds a
            # constant in place may leave a negative Python int behind;
            # it must not escape into addresses or shift amounts.
            return value.value & value.type.mask
        if cls is ConstantPointer:
            return value.address
        if cls is ConstantNull:
            return 0
        if cls is GlobalVariable:
            return self.hooks.global_address(self, value) & _WORD
        if cls is Function:
            return self.image.function_address(value)
        return self._eval_slow(frame, value)

    def _eval_slow(self, frame: Frame, value: Value) -> int:
        """Subclasses and error reporting, off the hot path."""
        if isinstance(value, Constant):
            return value.value & value.type.mask
        if isinstance(value, ConstantPointer):
            return value.address
        if isinstance(value, ConstantNull):
            return 0
        if isinstance(value, GlobalVariable):
            return self.hooks.global_address(self, value) & _WORD
        if isinstance(value, Function):
            return self.image.function_address(value)
        if isinstance(value, (Parameter, Instruction)):
            raise HardFault(
                f"use of undefined value {value.short()} in "
                f"@{frame.function.name}"
            )
        raise HardFault(f"unsupported operand {value!r}")

    # -- faulting memory access with handler retry ------------------------

    def _access(self, operation: Callable[[], Optional[int]]) -> Optional[int]:
        try:
            return operation()
        except (MemManageFault, BusFault) as fault:
            return self._retry_access(operation, fault)

    def _retry_access(self, operation: Callable[[], Optional[int]],
                      fault: Exception) -> Optional[int]:
        """Consult the monitor about ``fault``, then retry ``operation``.

        Entered only after an access has actually faulted; the common
        (allowed) access path never builds the retry closure.
        """
        for _ in range(_MAX_FAULT_RETRIES):
            if isinstance(fault, MemManageFault):
                with self.machine.privileged_mode():
                    handled = self.hooks.handle_memmanage(self, fault)
                if handled is False or handled is None:
                    raise fault
                if handled is not True:
                    # ("emulated", value): the handler performed the
                    # access itself (ACES' micro-emulator, §5.2).
                    return handled[1]
            else:
                with self.machine.privileged_mode():
                    emulated = self.hooks.handle_busfault(self, fault)
                if emulated is None:
                    raise HardFault(
                        f"unhandled BusFault at 0x{fault.address:08X}"
                    )
                return emulated
            try:
                return operation()
            except (MemManageFault, BusFault) as next_fault:
                fault = next_fault
        raise HardFault("fault retry limit exceeded (handler loop)")

    # -- instruction dispatch ----------------------------------------------

    def _execute(self, frame: Frame, inst: Instruction) -> None:
        try:
            handler = inst._hot[0]
        except AttributeError:
            handler = _bind_hot(inst)[0]
        handler(self, frame, inst)

    # -- per-instruction handlers ------------------------------------------

    def _exec_alloca(self, frame: Frame, inst: Alloca) -> None:
        self.sp = (self.sp - inst._hot_size) & ~0x3
        if self.sp < self.image.stack_limit:
            raise HardFault(
                f"stack overflow in @{frame.function.name} "
                f"(sp=0x{self.sp:08X})"
            )
        frame.regs[inst] = self.sp
        frame.index += 1

    def _exec_load(self, frame: Frame, inst: Load) -> None:
        address = self.eval(frame, inst.pointer)
        size = inst._hot_size
        machine = self.machine
        try:
            value = machine.load(address, size)
        except (MemManageFault, BusFault) as fault:
            value = self._retry_access(
                lambda: machine.load(address, size), fault)
        frame.regs[inst] = value & inst._hot_mask
        frame.index += 1

    def _exec_store(self, frame: Frame, inst: Store) -> None:
        address = self.eval(frame, inst.pointer)
        value = self.eval(frame, inst.value)
        size = inst._hot_size
        machine = self.machine
        try:
            machine.store(address, size, value)
        except (MemManageFault, BusFault) as fault:
            self._retry_access(
                lambda: machine.store(address, size, value) or 0, fault)
        frame.index += 1

    def _exec_gep(self, frame: Frame, inst: GEP) -> None:
        frame.regs[inst] = self._compute_gep(frame, inst)
        frame.index += 1

    def _exec_binop(self, frame: Frame, inst: BinOp) -> None:
        frame.regs[inst] = self._compute_binop(frame, inst)
        frame.index += 1

    def _exec_icmp(self, frame: Frame, inst: ICmp) -> None:
        frame.regs[inst] = self._compute_icmp(frame, inst)
        frame.index += 1

    def _exec_cast(self, frame: Frame, inst: Cast) -> None:
        frame.regs[inst] = self._compute_cast(frame, inst)
        frame.index += 1

    def _exec_select(self, frame: Frame, inst: Select) -> None:
        cond = self.eval(frame, inst.operands[0])
        chosen = inst.operands[1] if cond else inst.operands[2]
        frame.regs[inst] = self.eval(frame, chosen)
        frame.index += 1

    def _exec_call(self, frame: Frame, inst: Call) -> None:
        self._do_call(frame, inst, inst.callee,
                      [self.eval(frame, a) for a in inst.operands])

    def _exec_icall(self, frame: Frame, inst: ICall) -> None:
        address = self.eval(frame, inst.target)
        callee = self.image.function_at(address)
        if callee is None:
            raise HardFault(f"icall to non-function address 0x{address:08X}")
        self._do_call(frame, inst,
                      callee, [self.eval(frame, a) for a in inst.args])

    def _exec_svc(self, frame: Frame, inst: SVC) -> None:
        self.machine.stats.svc_calls += 1
        recorder = self.machine.recorder
        if recorder is not None:
            recorder.instant(EV_SVC, f"svc{inst.number}",
                             self.machine.cycles,
                             args={"number": inst.number})
        handler = getattr(self.hooks, "on_svc", None)
        if handler is not None:
            with self.machine.privileged_mode():
                handler(self, inst.number, inst.payload)
        frame.index += 1

    def _exec_br(self, frame: Frame, inst: Br) -> None:
        cond = self.eval(frame, inst.operands[0])
        frame.block = inst.then_block if cond else inst.else_block
        frame.index = 0

    def _exec_jump(self, frame: Frame, inst: Jump) -> None:
        frame.block = inst.target
        frame.index = 0

    def _exec_ret(self, frame: Frame, inst: Ret) -> None:
        self._do_return(frame, inst)

    def _exec_halt(self, frame: Frame, inst: Halt) -> None:
        code = self.eval(frame, inst.operands[0])
        self.hooks.on_halt(self, code)
        raise MachineHalt(code)

    def _exec_unreachable(self, frame: Frame, inst: Unreachable) -> None:
        raise HardFault(
            f"unreachable executed in @{frame.function.name}"
        )

    def _exec_unknown(self, frame: Frame, inst: Instruction) -> None:
        raise HardFault(f"unknown instruction {inst.opcode}")

    # -- calls / returns ---------------------------------------------------

    def _do_call(self, frame: Frame, inst: Instruction,
                 callee: Function, args: list[int]) -> None:
        frame.index += 1  # resume after the call on return
        switched = self.hooks.is_switch_point(self, callee)
        if switched:
            self.machine.stats.svc_calls += 1
            self.machine.consume(INSTRUCTION_COSTS["svc"])
            recorder = self.machine.recorder
            if recorder is not None:
                recorder.instant(EV_SVC_ENTER, callee.name,
                                 self.machine.cycles)
            with self.machine.privileged_mode():
                args = self.hooks.before_call(self, callee, args)
        self.call_function(callee, args, switched=switched, call_site=inst)

    def _do_return(self, frame: Frame, inst: Ret) -> None:
        value = self.eval(frame, inst.value) if inst.value is not None else None
        self.frames.pop()
        self.sp = frame.sp_entry
        if self.on_function_exit is not None:
            self.on_function_exit(frame.function)
        if frame.is_irq:
            # Exception return: drop back to the thread privilege level.
            self._irq_depth -= 1
            self.machine.consume(INSTRUCTION_COSTS["svc"])
            self.machine.privileged = self.machine.base_privilege
            recorder = self.machine.recorder
            if recorder is not None:
                recorder.end(EV_IRQ, frame.function.name,
                             self.machine.cycles)
            return
        if frame.switched:
            self.machine.stats.svc_calls += 1
            self.machine.consume(INSTRUCTION_COSTS["svc"])
            recorder = self.machine.recorder
            if recorder is not None:
                recorder.instant(EV_SVC_RETURN, frame.function.name,
                                 self.machine.cycles)
            with self.machine.privileged_mode():
                self.hooks.after_return(self, frame.function)
        if not self.frames:
            raise MachineHalt(value or 0)
        if frame.call_site is not None and value is not None:
            self.frames[-1].regs[frame.call_site] = value & _WORD

    # -- pure computations ---------------------------------------------------

    def _compute_gep(self, frame: Frame, inst: GEP) -> int:
        address = self.eval(frame, inst.pointer)
        pointee = inst.pointer.type.pointee
        indices = inst.indices
        first = self.eval(frame, indices[0])
        stride = pointee.size
        if isinstance(pointee, ArrayType):
            stride = pointee.size
        address = (address + _to_signed(first, 32) * _pad4(stride)) & _WORD
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                i = _to_signed(self.eval(frame, index), 32)
                address = (address + i * current.stride) & _WORD
                current = current.element
            elif isinstance(current, StructType):
                i = self.eval(frame, index)
                address = (address + current.offset_of(i)) & _WORD
                current = current.field_type(i)
            else:
                raise HardFault("gep into non-aggregate at runtime")
        return address

    def _compute_binop(self, frame: Frame, inst: BinOp) -> int:
        a = self.eval(frame, inst.operands[0])
        b = self.eval(frame, inst.operands[1])
        bits = inst.type.bits if isinstance(inst.type, IntType) else 32
        mask = (1 << bits) - 1
        op = inst.op
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "udiv":
            return (a // b) & mask if b else 0
        if op == "sdiv":
            sa, sb = _to_signed(a, bits), _to_signed(b, bits)
            return (_trunc_div(sa, sb) & mask) if sb else 0
        if op == "urem":
            return (a % b) & mask if b else 0
        if op == "srem":
            sa, sb = _to_signed(a, bits), _to_signed(b, bits)
            return (sa - _trunc_div(sa, sb) * sb) & mask if sb else 0
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b & 31)) & mask
        if op == "lshr":
            return (a >> (b & 31)) & mask
        if op == "ashr":
            return (_to_signed(a, bits) >> (b & 31)) & mask
        raise HardFault(f"unknown binop {op}")

    def _compute_icmp(self, frame: Frame, inst: ICmp) -> int:
        a = self.eval(frame, inst.operands[0])
        b = self.eval(frame, inst.operands[1])
        bits = (
            inst.operands[0].type.bits
            if isinstance(inst.operands[0].type, IntType)
            else 32
        )
        sa, sb = _to_signed(a, bits), _to_signed(b, bits)
        pred = inst.pred
        result = {
            "eq": a == b, "ne": a != b,
            "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
            "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
        }[pred]
        return 1 if result else 0

    def _compute_cast(self, frame: Frame, inst: Cast) -> int:
        value = self.eval(frame, inst.operands[0])
        kind = inst.kind
        if kind in ("zext", "ptrtoint", "inttoptr", "bitcast"):
            if isinstance(inst.type, IntType):
                return value & inst.type.mask
            return value & _WORD
        if kind == "trunc":
            return value & inst.type.mask
        if kind == "sext":
            src = inst.operands[0].type
            bits = src.bits if isinstance(src, IntType) else 32
            signed = _to_signed(value, bits)
            mask = inst.type.mask if isinstance(inst.type, IntType) else _WORD
            return signed & mask
        raise HardFault(f"unknown cast {kind}")

    # -- introspection -----------------------------------------------------

    @property
    def current_function(self) -> Optional[Function]:
        return self.frames[-1].function if self.frames else None


def _pad4(size: int) -> int:
    """Pointer strides for scalars stay exact; sub-word types keep size."""
    return size


# -- dispatch table ---------------------------------------------------------
#
# One handler per instruction class.  ``_bind_hot`` resolves the handler
# and the instruction's cycle cost once and caches both on the
# instruction object (``_hot``); images are immutable after linking, so
# the binding is valid for the instruction's lifetime and shared by
# every interpreter executing the image.

_HANDLERS: dict[type, Callable] = {
    Alloca: Interpreter._exec_alloca,
    Load: Interpreter._exec_load,
    Store: Interpreter._exec_store,
    GEP: Interpreter._exec_gep,
    BinOp: Interpreter._exec_binop,
    ICmp: Interpreter._exec_icmp,
    Cast: Interpreter._exec_cast,
    Select: Interpreter._exec_select,
    Call: Interpreter._exec_call,
    ICall: Interpreter._exec_icall,
    SVC: Interpreter._exec_svc,
    Br: Interpreter._exec_br,
    Jump: Interpreter._exec_jump,
    Ret: Interpreter._exec_ret,
    Halt: Interpreter._exec_halt,
    Unreachable: Interpreter._exec_unreachable,
}


def _bind_hot(inst: Instruction) -> tuple:
    """Resolve and cache ``(handler, cycle_cost)`` for ``inst``."""
    handler = None
    for cls in type(inst).__mro__:
        handler = _HANDLERS.get(cls)
        if handler is not None:
            break
    if handler is None:
        handler = Interpreter._exec_unknown
    cost = INSTRUCTION_COSTS.get(inst.opcode, DEFAULT_COST)
    if isinstance(inst, BinOp) and inst.op in _DIV_OPS:
        cost = DIV_COST
    if isinstance(inst, (Load, Alloca)):
        size = inst.type.size if isinstance(inst, Load) else inst.byte_size
        inst._hot_size = size
        if isinstance(inst, Load):
            inst._hot_mask = (1 << (size * 8)) - 1
    elif isinstance(inst, Store):
        inst._hot_size = inst.value.type.size
    hot = (handler, cost)
    inst._hot = hot
    return hot

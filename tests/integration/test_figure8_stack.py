"""Integration test of the Figure 8 stack-relocation semantics.

main passes a buffer on its stack to the Foo operation; the monitor
copies the buffer onto Foo's stack, redirects the pointer argument,
masks main's sub-regions, and copies the data back on exit — so Foo's
writes become visible to main without Foo ever touching main's frame.
"""

import pytest

import repro.ir as ir
from repro import build_opec, run_image
from repro.hw import SecurityAbort
from repro.ir import I8, I32, VOID, array, ptr
from repro.partition import OperationSpec


def build_foo_module():
    module = ir.Module("fig8")
    checksum = module.add_global("checksum", I32, 0)

    # foo(buf, size): memset(buf, 'B', size) like the paper's example.
    foo, b = ir.define(module, "foo", VOID, [ptr(I8), I32])
    buf, size = foo.params
    with b.for_range(0, size) as load_i:
        b.store(b.const(ord("B"), I8), b.gep(buf, load_i()))
    b.ret_void()

    _m, b = ir.define(module, "main", I32, [])
    local = b.alloca(array(I8, 16), name="buf")
    with b.for_range(0, 16) as load_i:
        b.store(b.const(ord("A"), I8), b.gep(local, 0, load_i()))
    b.call(foo, b.gep(local, 0, 0), 16)
    # Sum the buffer: every byte must now be 'B'.
    total = b.alloca(I32)
    b.store(0, total)
    with b.for_range(0, 16) as load_i:
        byte = b.zext(b.load(b.gep(local, 0, load_i())))
        b.store(b.add(b.load(total), byte), total)
    b.store(b.load(total), checksum)
    b.halt(b.load(total))
    return module


SPECS = [OperationSpec("foo", stack_info={0: 16})]


def test_buffer_relocated_and_copied_back(board):
    artifacts = build_opec(build_foo_module(), board, SPECS)
    result = run_image(artifacts.image)
    assert result.halt_code == 16 * ord("B")


def test_without_stack_info_foo_faults_on_callers_frame(board):
    """If the developer omits the stack information, foo receives a
    pointer into main's masked frame and the MPU stops the write."""
    artifacts = build_opec(build_foo_module(), board,
                           [OperationSpec("foo")])  # no stack_info
    with pytest.raises(SecurityAbort):
        run_image(artifacts.image)


def test_pointer_argument_redirected_to_foo_stack(board):
    artifacts = build_opec(build_foo_module(), board, SPECS)
    seen = {}

    from repro.interp.interpreter import Interpreter
    from repro.hw.machine import Machine
    from repro.runtime.monitor import OpecMonitor

    machine = Machine(board)
    artifacts.image.initialize_memory(machine)
    monitor = OpecMonitor(machine, artifacts.image)
    original_before = monitor.before_call

    def spy_before(interp, callee, args):
        new_args = original_before(interp, callee, args)
        seen["original"] = args[0]
        seen["relocated"] = new_args[0]
        return new_args

    monitor.before_call = spy_before
    interp = Interpreter(machine, artifacts.image, monitor)
    assert interp.run() == 16 * ord("B")
    assert seen["relocated"] != seen["original"]
    # The copy lives below the caller's sub-region boundary.
    boundary = monitor.stack.boundary_below(seen["original"])
    assert seen["relocated"] <= boundary


def test_subregion_mask_restored_after_exit(board):
    artifacts = build_opec(build_foo_module(), board, SPECS)
    result = run_image(artifacts.image)
    # After foo exits, main continues writing its own frame (the
    # checksum loop ran) — so the mask restoration worked.
    assert result.hooks.current.is_default
    assert result.hooks.context_stack == []

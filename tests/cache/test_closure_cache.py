"""Persistent compiled-closure cache: warm runs skip codegen entirely.

Each test points ``REPRO_CACHE`` at a private directory, cold-runs a
firmware (compiling its blocks and loop traces, and persisting them at
halt), then rebuilds the *same* module from scratch — a stand-in for a
fresh process — and verifies the warm run loads every closure from the
store, recompiles nothing, and simulates byte-identically.  Damaged
entries must degrade to a recompile, never to a failed run.
"""

import pytest

import repro.ir as ir
from repro import cache
from repro.cache.digest import closures_digest
from repro.eval import workloads
from repro.hw import Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.interp import closurecache
from repro.ir import I32


@pytest.fixture
def private_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "store"))
    # These tests exercise the compiled tiers regardless of the ambient
    # mode (the CI matrix runs the suite with the tiers disabled too).
    monkeypatch.setenv("REPRO_BLOCKCOMPILE", "on")
    monkeypatch.setenv("REPRO_TRACEFUSE", "on")
    monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "2")
    workloads.clear_caches()
    cache.reset_store_state()
    yield cache.active_store()
    workloads.clear_caches()
    cache.reset_store_state()


def _loop_module(iterations: int = 300):
    module = ir.Module("loop")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _run(module):
    """One full simulated run; returns (interp, observables)."""
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=1_000_000)
    code = interp.run()
    return interp, {
        "halt": code,
        "cycles": machine.cycles,
        "instructions": interp.instructions_executed,
        "stats": machine.stats.as_dict(),
        "sram": machine.read_bytes(machine.sram.base, machine.sram.size),
    }


def _counters(interp) -> dict:
    return interp.compile_metrics.snapshot()["counters"]


def test_warm_run_recompiles_nothing(private_store):
    cold_interp, cold = _run(_loop_module())
    cc = _counters(cold_interp)
    assert cc["blockcompile.blocks_compiled"] > 0
    assert cc["tracefuse.traces_compiled"] > 0
    assert cc["closurecache.saves"] == 1

    # A structurally identical fresh module = a fresh process's view.
    warm_interp, warm = _run(_loop_module())
    wc = _counters(warm_interp)
    assert wc["closurecache.blocks_loaded"] > 0
    assert wc["closurecache.traces_loaded"] > 0
    assert wc["blockcompile.blocks_compiled"] == 0
    assert wc["tracefuse.traces_compiled"] == 0
    assert wc["tracefuse.trace_rejects"] == 0
    # Nothing newly compiled → nothing to re-save.
    assert wc["closurecache.saves"] == 0
    assert warm == cold


def test_warm_run_is_byte_identical_for_opec_app(private_store):
    from repro.pipeline import run_image

    app = workloads.build_app("PinLock", profile="quick")
    image = workloads.opec_artifacts("PinLock", profile="quick").image
    cold = run_image(image, setup=app.setup,
                     max_instructions=app.max_instructions)
    workloads.clear_caches()
    warm_image = workloads.opec_artifacts("PinLock", profile="quick").image
    assert warm_image.module is not image.module
    warm = run_image(warm_image, setup=app.setup,
                     max_instructions=app.max_instructions)
    assert warm.halt_code == cold.halt_code
    assert warm.cycles == cold.cycles
    assert (warm.interpreter.instructions_executed
            == cold.interpreter.instructions_executed)
    wc = _counters(warm.interpreter)
    assert wc["closurecache.blocks_loaded"] > 0
    assert wc["blockcompile.blocks_compiled"] == 0


def _branchy_loop_module(iterations: int = 300):
    """A hot loop whose body branches — unfusible, so its head is
    *rejected* by the trace compiler rather than fused."""
    module = ir.Module("branchy")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        with b.if_then(b.icmp("ult", b.and_(load_i(), 1), 1)):
            b.store(b.add(b.load(acc), 2), acc)
        b.store(b.add(b.load(acc), 1), acc)
    b.halt(b.load(acc))
    return module


def test_rejected_traces_persist(private_store):
    # A rejection (cached ``None``) is itself an artifact: the warm
    # run must skip the detection walk too, reporting zero rejects.
    cold_interp, cold = _run(_branchy_loop_module())
    assert _counters(cold_interp)["tracefuse.trace_rejects"] > 0
    fresh = _branchy_loop_module()
    blocks, traces = closurecache.preload(fresh)
    assert blocks > 0
    assert any(getattr(b, "_trace", "unset") is None
               for b in fresh.get_function("main").blocks)
    warm_interp, warm = _run(fresh)
    assert _counters(warm_interp)["tracefuse.trace_rejects"] == 0
    assert warm == cold


def test_damaged_entry_degrades_to_recompile(private_store):
    cold_interp, cold = _run(_loop_module())
    digest = closures_digest(_loop_module())
    payload = private_store.get(digest)
    assert payload and payload["blocks"]
    # Replace every closure entry's code with garbage bytes: decoding
    # must fail quietly and the warm run must recompile from source.
    for entry in payload["blocks"].values():
        if entry is not None:
            entry["code"] = b"\x00not marshal"
    for entry in payload["traces"].values():
        if entry is not None:
            entry["code"] = b"\x00not marshal"
    private_store.put(digest, payload)
    warm_interp, warm = _run(_loop_module())
    wc = _counters(warm_interp)
    assert wc["blockcompile.blocks_compiled"] > 0  # recompiled, no crash
    assert warm == cold


def test_cache_off_is_a_quiet_noop(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "2")
    cache.reset_store_state()
    try:
        interp, _ = _run(_loop_module())
        counters = _counters(interp)
        assert counters["closurecache.blocks_loaded"] == 0
        assert counters["closurecache.saves"] == 0
    finally:
        cache.reset_store_state()

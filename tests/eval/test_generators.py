"""Tests for the table/figure generators (quick profile, PinLock-heavy
to keep runtime bounded)."""

import pytest

from repro.eval import figure9, figure10, figure11, table1, table2, table3
from repro.eval.report import render_bars, render_table


class TestTable1:
    def test_pinlock_row(self):
        row = table1.compute_row("PinLock")
        assert row.operations == 6
        assert row.avg_functions > 1
        assert row.privileged_code > 8000
        assert 0 < row.avg_gvars_pct < 100

    def test_render(self):
        rows = [table1.compute_row("PinLock")]
        text = table1.render(rows)
        assert "PinLock" in text
        assert "#OPs" in text


class TestFigure9:
    def test_pinlock_overheads(self):
        row = figure9.compute_row("PinLock")
        assert -0.5 < row.runtime_pct < 10.0
        assert 0 < row.flash_pct < 10.0
        assert 0 <= row.sram_pct < 10.0

    def test_render(self):
        text = figure9.render([figure9.compute_row("PinLock")])
        assert "Runtime Overhead" in text


class TestTable2:
    def test_pinlock_policies(self):
        rows = table2.compute_rows("PinLock")
        policies = [r.policy for r in rows]
        assert policies == ["OPEC", "ACES1", "ACES2", "ACES3"]
        opec = rows[0]
        assert opec.privileged_app_pct == 0.0  # C-claim: OPEC never lifts
        assert any(r.privileged_app_pct > 0 for r in rows[1:])

    def test_opec_sram_overhead_exceeds_aces(self):
        rows = {r.policy: r for r in table2.compute_rows("PinLock")}
        # Shadow copies cost SRAM; ACES does not duplicate variables.
        assert rows["OPEC"].sram_pct >= rows["ACES2"].sram_pct


class TestFigure10:
    def test_opec_pt_always_zero(self):
        assert all(v == 0.0 for v in figure10.opec_pt_values("PinLock"))
        assert all(v == 0.0 for v in figure10.opec_pt_values("FatFs-uSD"))

    def test_aces_pt_values_in_range(self):
        for strategy in ("ACES1", "ACES2", "ACES3"):
            for value in figure10.aces_pt_values("FatFs-uSD", strategy):
                assert 0.0 <= value <= 1.0

    def test_cumulative_monotone(self):
        data = figure10.compute_figure(("PinLock",))[0]
        for strategy in data.pt_values:
            series = data.cumulative(strategy)
            assert all(a <= b for a, b in zip(series, series[1:]))
            assert series[-1] == 1.0


class TestFigure11:
    def test_pinlock_et(self):
        data = figure11.compute_app("PinLock")
        assert len(data.et["OPEC"]) == len(data.tasks) == 5
        for policy, values in data.et.items():
            assert all(0.0 <= v <= 1.0 for v in values)
        # OPEC's average ET never exceeds the worst ACES strategy.
        avg = lambda vs: sum(vs) / len(vs)
        worst_aces = max(avg(data.et[s]) for s in ("ACES1", "ACES2", "ACES3"))
        assert avg(data.et["OPEC"]) <= worst_aces

    def test_trace_and_partitions_share_module_identity(self):
        """Regression: all-1.0 OPEC rows mean the trace ran against a
        different module instance than the partitions."""
        for app in ("PinLock", "FatFs-uSD"):
            data = figure11.compute_app(app)
            assert any(v < 1.0 for v in data.et["OPEC"])
            assert any(v > 0.0
                       for s in ("ACES1", "ACES2", "ACES3")
                       for v in data.et[s])


class TestTable3:
    def test_tcp_echo_icalls_resolved(self):
        row = table3.compute_row("TCP-Echo")
        assert row.icalls >= 1
        assert row.svf_resolved >= 1
        assert row.max_targets >= 1
        assert row.solve_time_s >= 0

    def test_render(self):
        text = table3.render([table3.compute_row("PinLock")])
        assert "#Icall" in text


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_render_bars(self):
        text = render_bars({"x": 1.0, "yy": 2.0})
        assert "#" in text
        assert "2.00%" in text

    def test_render_bars_empty(self):
        assert render_bars({}) == "(no data)"

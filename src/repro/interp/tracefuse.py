"""Trace fusion: hot multi-block loop chains fused into one closure.

The third interpreter tier.  PR 7's block compiler
(:mod:`repro.interp.blockcompile`) fused each basic block into one
closure; the remaining per-iteration overhead of a hot loop is the
*inter*-block machinery — one closure call, one ``_compiled`` lookup,
one dispatch-loop turn and one full set of hoists (``regs``,
``pending``, the epoch-bound ``fast_allows`` rebind) per block per
iteration.  This module detects hot loop chains — blocks linked by
``jump``-to-unconditional-target edges and closed back to the head by
a ``jump`` or conditional ``br`` latch — and compiles the whole chain
into a single closure that stays resident across iterations.

Semantics are the block compiler's, batched harder:

* **One guard per iteration.**  Pure instruction runs (register
  compute, folded constants, mid-chain jumps) execute under a single
  batched cycle charge and instruction count.  That is exact because
  the iteration is entered only with no pending IRQs, SysTick
  disarmed, and the whole iteration inside the instruction budget —
  and pure ops can change none of those.  Loads/stores are *sync
  points*: the batched charge for the preceding pure run (plus the
  memory op itself) commits first, then the access runs through the
  identical ``fast_allows``/PPB/fault-retry body the block compiler
  emits, and afterwards the trace suspends if the access pended an IRQ
  or armed SysTick.

* **Fall back exactly like a block.**  Every escape (pending IRQ,
  SysTick armed, budget, fault, KeyError on an undefined register)
  flushes ``interp.instructions_executed``, ``frame.block`` *and*
  ``frame.index`` — traces span blocks, so the flush is three stores
  instead of the block compiler's two — and returns to the dispatch
  loop, which resumes on the per-block (or single-step) tier.  A
  pure-run KeyError rolls back to the start of its uncommitted
  segment; the per-block replay then reports the canonical "use of
  undefined value" HardFault.

* **Progress protocol.**  The closure returns 1 when it committed any
  state and 0 when it bailed before executing anything (so the
  dispatch loop falls through to the per-block tier instead of
  re-entering the trace forever).

Traces compile once a block has been entered ``REPRO_TRACEFUSE_THRESHOLD``
times (default 8) at index 0 with IRQs quiet, and are cached on the IR
(``block._trace``) — shared by every interpreter and batch lane, and
dropped on pickle like ``_compiled``.  ``REPRO_TRACEFUSE`` (default
**on**) gates the tier; unknown spellings raise loudly.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from ..ir.function import BasicBlock
from ..ir.instructions import Alloca, Br, Jump, Load, Store
from ..ir.values import Constant
from .blockcompile import _BlockCompiler, _inst_cost

#: Accepted ``REPRO_TRACEFUSE`` spellings.  Anything else raises.
#: Unset/empty means **on** — trace fusion is the default mode.
TRACEFUSE_ON_VALUES = frozenset({"", "on", "1", "true", "yes", "enabled"})
TRACEFUSE_OFF_VALUES = frozenset({"off", "0", "none", "false", "disabled"})

#: Block entries (at index 0, IRQs quiet) before a trace is attempted.
DEFAULT_TRACE_THRESHOLD = 8

#: Chain caps: a runaway walk must not fuse half a program.
MAX_TRACE_BLOCKS = 16
MAX_TRACE_INSTS = 256


def trace_fuse_enabled() -> bool:
    """Whether ``REPRO_TRACEFUSE`` asks for fused-trace execution.

    Defaults to on; misspellings raise instead of silently changing
    the execution mode under a benchmark or a determinism check.
    """
    raw = os.environ.get("REPRO_TRACEFUSE", "").strip().lower()
    if raw in TRACEFUSE_ON_VALUES:
        return True
    if raw in TRACEFUSE_OFF_VALUES:
        return False
    raise ValueError(
        f"REPRO_TRACEFUSE={raw!r} is not a recognised setting; "
        f"use one of {sorted(TRACEFUSE_ON_VALUES - {''})} or "
        f"{sorted(TRACEFUSE_OFF_VALUES)}"
    )


def trace_threshold() -> int:
    """Hot threshold from ``REPRO_TRACEFUSE_THRESHOLD`` (default 8).

    Validated loudly, distinguishing "not an integer" from a value
    that *is* an integer but out of range — the ``REPRO_BATCH`` rule.
    """
    raw = os.environ.get("REPRO_TRACEFUSE_THRESHOLD", "").strip()
    if not raw:
        return DEFAULT_TRACE_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACEFUSE_THRESHOLD={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ValueError(
            f"REPRO_TRACEFUSE_THRESHOLD={raw!r} is not a positive "
            f"entry count"
        )
    return value


class _Unfusible(Exception):
    """Internal: the chain contains something a trace cannot carry."""


def _detect_chain(head: BasicBlock) -> Optional[list[BasicBlock]]:
    """The loop chain anchored at ``head``, or ``None``.

    Follows ``jump`` terminators forward until the loop closes back to
    ``head`` — either by a ``jump`` latch or a conditional ``br``
    latch with ``head`` among its targets.  Anything else (a chain
    that leaves through a ``br`` elsewhere, revisits a non-head block,
    or exceeds the caps) is not a loop through ``head`` and is
    rejected.
    """
    chain = [head]
    seen = {id(head)}
    total = len(head.instructions)
    cur = head
    while True:
        insts = cur.instructions
        if not insts:
            return None
        term = insts[-1]
        if isinstance(term, Jump):
            target = term.target
            if target is head:
                return chain
            if (id(target) in seen or len(chain) >= MAX_TRACE_BLOCKS
                    or total + len(target.instructions) > MAX_TRACE_INSTS):
                return None
            chain.append(target)
            seen.add(id(target))
            total += len(target.instructions)
            cur = target
        elif isinstance(term, Br):
            if head is term.then_block or head is term.else_block:
                return chain
            return None
        else:
            return None


class _TraceCompiler(_BlockCompiler):
    """Emits and ``exec``s the fused-loop source for one chain.

    Reuses every per-instruction emitter of the block compiler;
    overriding :meth:`_flush` makes each emitted escape restore
    ``frame.block`` as well, since inside a trace the executing block
    is not the one the frame was entered on.
    """

    def __init__(self, chain: list[BasicBlock]):
        super().__init__(chain[0])
        self.chain = chain
        self._cur_block = chain[0]

    def _flush(self, i: int) -> list[str]:
        return ["interp.instructions_executed = n",
                f"frame.block = {self._bind(self._cur_block, 'B')}",
                f"frame.index = {i}"]

    def compile(self) -> Callable:
        from .blockcompile import _undef
        from .interpreter import (  # runtime import: no module cycle
            ExecutionLimitExceeded,
            _to_signed,
            _trunc_div,
        )
        from ..hw.exceptions import BusFault, HardFault, MemManageFault

        chain = self.chain
        head = chain[0]
        head_name = self._bind(head, "B")
        total = sum(len(b.instructions) for b in chain)
        has_mem = any(isinstance(inst, (Load, Store))
                      for b in chain for inst in b.instructions)

        lines = ["def __trace(interp, frame, machine):"]

        def w(indent: int, text: str) -> None:
            lines.append("    " * indent + text)

        w(1, "regs = frame.regs")
        w(1, "pending = machine.pending_irqs")
        w(1, "n = interp.instructions_executed")
        w(1, "maxi = interp.max_instructions")
        if has_mem:
            w(1, "mem_read = machine.memory.read")
            w(1, "mem_write = machine.memory.write")
            w(1, "n_loads = machine._n_loads")
            w(1, "n_stores = machine._n_stores")
            w(1, "n_bus = machine._n_bus_faults")
            w(1, "n_mm = machine._n_memmanage")
            for line in self._FP_BIND:
                w(1, line)
        w(1, "prog = 0")
        w(1, "while True:")
        # One guard per iteration: the whole iteration must run with
        # no pending IRQs, SysTick disarmed, and inside the budget —
        # then pure runs need no per-instruction checks at all.
        w(2, f"if pending or machine._systick_armed "
             f"or n + {total} > maxi:")
        w(3, "interp.instructions_executed = n")
        w(3, f"frame.block = {head_name}")
        w(3, "frame.index = 0")
        w(3, "return prog")

        # Streaming chunk state: a buffered pure run, its batched
        # cost/count, and the (block, index) a KeyError rolls back to.
        buf: list[str] = []
        buf_cost = 0
        buf_count = 0
        seg: tuple[BasicBlock, int] = (head, 0)

        def commit(extra_cost: int = 0, extra_count: int = 0,
                   tail: tuple[str, ...] = ()) -> None:
            """Charge the buffered pure run plus the op that ends it.

            Register writes inside the ``try`` are idempotent and
            nothing is charged until every fetch succeeded, so a
            KeyError rolls back to the segment start and the replay
            (per-block tier) observes exactly the reference state.
            """
            nonlocal buf, buf_cost, buf_count
            stmts = buf + list(tail)
            if stmts:
                seg_block, seg_index = seg
                w(2, "try:")
                for stmt in stmts:
                    w(3, stmt)
                w(2, "except KeyError:")
                w(3, "interp.instructions_executed = n")
                w(3, f"frame.block = {self._bind(seg_block, 'B')}")
                w(3, f"frame.index = {seg_index}")
                w(3, "return prog")
            w(2, f"machine.cycles += {buf_cost + extra_cost}")
            w(2, f"n += {buf_count + extra_count}")
            w(2, "prog = 1")
            buf = []
            buf_cost = 0
            buf_count = 0

        last_bi = len(chain) - 1
        for bi, block in enumerate(chain):
            self._cur_block = block
            insts = block.instructions
            if not insts:
                raise _Unfusible(f"empty block {block.name}")
            last_i = len(insts) - 1
            for i, inst in enumerate(insts):
                cost = _inst_cost(inst)
                if i == last_i:
                    if bi < last_bi:
                        # Mid-chain jump: pure glue — its cost and
                        # count fold into the ongoing pure run; the
                        # next block's statements simply follow.
                        if not isinstance(inst, Jump):
                            raise _Unfusible(
                                f"mid-chain terminator {inst.opcode}")
                        buf_cost += cost
                        buf_count += 1
                        continue
                    self._emit_latch(w, commit, inst, cost, head_name)
                    continue
                e = self._emit(i, inst)
                if isinstance(inst, (Load, Store)):
                    # Sync point: commit the pure run + this access,
                    # run the block compiler's exact memory body, then
                    # suspend if the access pended an IRQ or armed
                    # SysTick (the only ways either can change inside
                    # an iteration).
                    commit(extra_cost=cost, extra_count=1)
                    if e.guarded:
                        w(2, "try:")
                        for stmt in e.fetch:
                            w(3, stmt)
                        w(2, "except KeyError:")
                        for stmt in self._flush(i):
                            w(3, stmt)
                        w(3, f"_undef(interp, frame, "
                             f"{self._bind(inst, 'I')})")
                    for stmt in e.body:
                        w(2, stmt)
                    w(2, "if pending or machine._systick_armed:")
                    for stmt in self._flush(i + 1):
                        w(3, stmt)
                    w(3, "return 1")
                    seg = (block, i + 1)
                elif isinstance(inst, Alloca):
                    # Side-effecting (moves interp.sp) but cannot pend
                    # IRQs or arm SysTick: a sync point with no
                    # suspension check.
                    commit(extra_cost=cost, extra_count=1)
                    for stmt in e.body:
                        w(2, stmt)
                    seg = (block, i + 1)
                elif e.pure and not e.transfers:
                    buf.extend(e.fetch + e.body)
                    buf_cost += cost
                    buf_count += 1
                else:
                    raise _Unfusible(f"unfusible {inst.opcode} "
                                     f"in {block.name}")

        source = "\n".join(lines) + "\n"
        self.ns.update({
            "BusFault": BusFault,
            "MemManageFault": MemManageFault,
            "HardFault": HardFault,
            "ExecutionLimitExceeded": ExecutionLimitExceeded,
            "_ts": _to_signed,
            "_tdiv": _trunc_div,
            "_undef": _undef,
        })
        code = compile(source,
                       f"<trace @{self.fname}:{head.name}x{len(chain)}>",
                       "exec")
        exec(code, self.ns)
        fn = self.ns["__trace"]
        fn.__repro_source__ = source
        fn.__repro_chain__ = tuple(chain)
        return fn

    def _emit_latch(self, w, commit, inst, cost: int,
                    head_name: str) -> None:
        """The chain's final terminator: loop back or leave."""
        if isinstance(inst, Jump):
            # _detect_chain only ends a chain on a jump when it
            # targets the head: unconditionally continue.
            commit(extra_cost=cost, extra_count=1)
            w(2, "continue")
            return
        if not isinstance(inst, Br):
            raise _Unfusible(f"latch {inst.opcode}")
        cond_op = inst.operands[0]
        then_name = self._bind(inst.then_block, "B")
        else_name = self._bind(inst.else_block, "B")
        if isinstance(cond_op, Constant):
            folded = cond_op.value & cond_op.type.mask
            tail = (f"__b = {then_name if folded else else_name}",)
        else:
            cond, _guarded = self._operand(cond_op)
            tail = (f"__b = {then_name} if ({cond}) else {else_name}",)
        commit(extra_cost=cost, extra_count=1, tail=tail)
        w(2, f"if __b is {head_name}:")
        w(3, "continue")
        w(2, "interp.instructions_executed = n")
        w(2, "frame.block = __b")
        w(2, "frame.index = 0")
        w(2, "return 1")


def compile_trace(block: BasicBlock) -> Optional[Callable]:
    """Compile the loop trace anchored at ``block`` and cache it.

    Returns the fused closure, or ``None`` (also cached, on
    ``block._trace``) when ``block`` does not anchor a fusible loop —
    the interpreter then permanently runs it on the per-block tier.
    Never raises: like ``compile_block``, failure degrades, it does
    not kill the run.
    """
    try:
        chain = _detect_chain(block)
        fn = _TraceCompiler(chain).compile() if chain is not None else None
    except Exception:
        fn = None
    block._trace = fn
    return fn


__all__ = [
    "DEFAULT_TRACE_THRESHOLD",
    "MAX_TRACE_BLOCKS",
    "MAX_TRACE_INSTS",
    "TRACEFUSE_OFF_VALUES",
    "TRACEFUSE_ON_VALUES",
    "compile_trace",
    "trace_fuse_enabled",
    "trace_threshold",
]

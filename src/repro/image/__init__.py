"""Program-image generation (§4.4): layout, MPU synthesis, linking."""

from .layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    Image,
    Section,
    VECTOR_TABLE_SIZE,
    VanillaImage,
    align_up,
    build_vanilla_image,
    function_code_size,
)
from .linker import (
    HEAP_FUNCTION_NAMES,
    LinkError,
    OpecImage,
    OperationLayout,
    build_opec_image,
)
from .metadata import (
    instrumentation_size,
    metadata_size,
    monitor_code_size,
)
from .policyfile import (
    PolicyValidationError,
    dump_policy,
    load_policy,
    policy_document,
    validate_policy,
    write_policy,
)
from .mpu_config import (
    BACKGROUND_REGION,
    CODE_REGION,
    DATA_ZONE_REGION,
    OPDATA_REGION,
    PERIPHERAL_REGIONS,
    STACK_REGION,
    RegionTemplate,
    background_region,
    code_region,
    covering_regions,
    data_zone_region,
    opdata_region,
    peripheral_region,
    stack_region,
    subregion_disable_for_free_range,
)

__all__ = [
    "DEFAULT_HEAP_SIZE", "DEFAULT_STACK_SIZE", "Image", "Section",
    "VECTOR_TABLE_SIZE", "VanillaImage", "align_up", "build_vanilla_image",
    "function_code_size",
    "HEAP_FUNCTION_NAMES", "LinkError", "OpecImage", "OperationLayout",
    "build_opec_image",
    "instrumentation_size", "metadata_size", "monitor_code_size",
    "PolicyValidationError", "dump_policy", "load_policy",
    "policy_document", "validate_policy", "write_policy",
    "BACKGROUND_REGION", "CODE_REGION", "DATA_ZONE_REGION", "OPDATA_REGION",
    "PERIPHERAL_REGIONS", "STACK_REGION", "RegionTemplate",
    "background_region", "code_region", "covering_regions",
    "data_zone_region", "opdata_region", "peripheral_region", "stack_region",
    "subregion_disable_for_free_range",
]

"""Tests for the results exporter."""

from repro.eval.export import export_all


def test_export_writes_text_and_tsv(tmp_path):
    written = export_all(str(tmp_path))
    names = {p.split("/")[-1] for p in written}
    for target in ("table1", "table2", "table3",
                   "figure9", "figure10", "figure11"):
        assert f"{target}.txt" in names
        assert f"{target}.tsv" in names
    tsv = (tmp_path / "figure9.tsv").read_text().splitlines()
    assert tsv[0].split("\t") == ["app", "runtime_pct", "flash_pct",
                                  "sram_pct"]
    assert any(line.startswith("PinLock") for line in tsv)
    table1_txt = (tmp_path / "table1.txt").read_text()
    assert "#OPs" in table1_txt
    assert "campaign_smoke.txt" in names
    assert "campaign_smoke.tsv" in names
    campaign_txt = (tmp_path / "campaign_smoke.txt").read_text()
    assert "PASS (OPEC strictly more)" in campaign_txt
    assert "PASS (OPEC strictly lower)" in campaign_txt

"""LCD-uSD: picture viewer with fade-in / fade-out effects (§6).

"Presents the pictures pre-stored in an SD card with fade-in and
fade-out visual effects" — six pictures, CPU-drawn (no blitter), each
shown briefly.  Eleven operations as in Table 1.
"""

from __future__ import annotations

from ..hw.board import stm32479i_eval
from ..hw.machine import Machine
from ..hw.peripherals import GPIO, LTDC, RCC, SDCard
from ..ir import I8, I32, Module, VOID, array, define, ptr
from ..partition.operations import OperationSpec
from .base import Application
from .hal.display import add_lcd_hal
from .hal.libc import add_libc
from .hal.storage import add_sd_hal
from .hal.system import add_system_hal
from .lib.fatfs import add_fatfs, make_disk_image

PICTURE_COUNT = 6
PICTURE_BYTES = 512
PICTURE_WORDS = PICTURE_BYTES // 4


def picture_bytes(index: int) -> bytes:
    return bytes((index * 53 + 7 * i) & 0xFF for i in range(PICTURE_BYTES))


def picture_name(index: int) -> bytes:
    return f"IMG{index:02d}   ".encode()[:8]


def build(pictures: int = PICTURE_COUNT) -> Application:
    board = stm32479i_eval()
    module = Module("lcd_usd")

    libc = add_libc(module)
    system = add_system_hal(module, board)
    sd = add_sd_hal(module, board)
    lcd = add_lcd_hal(module, board)
    fatfs = add_fatfs(module, sd, libc)
    p32 = ptr(I32)

    sd_fatfs = module.add_global("SDFatFs", fatfs.fatfs_t, source_file="main.c")
    img_file = module.add_global("ImgFile", fatfs.fil_t, source_file="main.c")
    img_buffer = module.add_global("img_buffer", array(I8, PICTURE_BYTES),
                                   source_file="main.c")
    framebuffer = module.add_global("framebuffer", array(I32, PICTURE_WORDS),
                                    source_file="main.c")
    img_names = module.add_global(
        "img_names", array(I8, 8 * PICTURE_COUNT),
        list(b"".join(picture_name(i) for i in range(PICTURE_COUNT))),
        is_const=True, source_file="main.c",
    )
    shown = module.add_global("shown", I32, 0, source_file="main.c")
    brightness = module.add_global("brightness", I32, 8,
                                   source_file="main.c",
                                   sanitize_range=(0, 8))

    # -- the ten task entries ---------------------------------------------
    sd_init_task, b = define(module, "Sd_Init_Task", VOID, [],
                             source_file="sd_task.c")
    b.call(system.rcc_enable_apb2, 1 << 11)
    b.call(sd.init)
    b.ret_void()

    lcd_init_task, b = define(module, "Lcd_Init_Task", VOID, [],
                              source_file="lcd_task.c")
    b.call(system.rcc_enable_apb2, 1 << 26)
    b.call(lcd.init, b.ptrtoint(b.gep(framebuffer, 0, 0)))
    b.ret_void()

    mount_task, b = define(module, "Mount_Task", VOID, [],
                           source_file="fs_task.c")
    b.call(fatfs.f_mount, sd_fatfs)
    b.ret_void()

    open_task, b = define(module, "Open_Task", VOID, [I32],
                          source_file="viewer.c")
    (index,) = open_task.params
    name = b.gep(img_names, 0, b.mul(index, 8))
    b.call(fatfs.f_open, img_file, sd_fatfs, name, 0)
    b.ret_void()

    read_task, b = define(module, "Read_Task", VOID, [],
                          source_file="viewer.c")
    b.call(fatfs.f_read, img_file, sd_fatfs, b.gep(img_buffer, 0, 0),
           PICTURE_BYTES)
    b.call(fatfs.f_close, img_file, sd_fatfs)
    b.ret_void()

    draw_task, b = define(module, "Draw_Task", VOID, [],
                          source_file="viewer.c")
    pixels = b.bitcast(b.gep(img_buffer, 0, 0), p32)
    b.call(lcd.draw_buffer, b.gep(framebuffer, 0, 0), pixels,
           PICTURE_WORDS)
    b.ret_void()

    fade_in_task, b = define(module, "FadeIn_Task", VOID, [],
                             source_file="fade.c")
    with b.for_range(1, 9) as load_level:
        level = load_level()
        b.store(level, brightness)
        b.call(lcd.fade, b.gep(framebuffer, 0, 0), PICTURE_WORDS,
               b.load(brightness))
        b.call(lcd.reload)
    b.ret_void()

    fade_out_task, b = define(module, "FadeOut_Task", VOID, [],
                              source_file="fade.c")
    with b.for_range(0, 8) as load_step:
        step = load_step()
        b.store(b.sub(8, b.add(step, 1)), brightness)
        b.call(lcd.fade, b.gep(framebuffer, 0, 0), PICTURE_WORDS,
               b.load(brightness))
        b.call(lcd.reload)
    b.ret_void()

    show_task, b = define(module, "Show_Task", VOID, [],
                          source_file="viewer.c")
    b.call(lcd.reload)
    b.call(system.delay_loop, 32)  # "displays each picture in a short time"
    b.store(b.add(b.load(shown), 1), shown)
    b.ret_void()

    delay_task, b = define(module, "Delay_Task", VOID, [],
                           source_file="viewer.c")
    b.call(system.delay_loop, 16)
    b.ret_void()

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0xF)
    b.call(sd_init_task)
    b.call(lcd_init_task)
    b.call(mount_task)
    with b.for_range(0, pictures) as load_i:
        i = load_i()
        b.call(open_task, i)
        b.call(read_task)
        b.call(draw_task)
        b.call(fade_in_task)
        b.call(show_task)
        b.call(fade_out_task)
        b.call(delay_task)
    b.halt(b.load(shown))

    specs = [
        OperationSpec("Sd_Init_Task"),
        OperationSpec("Lcd_Init_Task"),
        OperationSpec("Mount_Task"),
        OperationSpec("Open_Task"),
        OperationSpec("Read_Task"),
        OperationSpec("Draw_Task"),
        OperationSpec("FadeIn_Task"),
        OperationSpec("Show_Task"),
        OperationSpec("FadeOut_Task"),
        OperationSpec("Delay_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        files = {picture_name(i): picture_bytes(i) for i in range(pictures)}
        machine.attach_device("SDIO", SDCard(image=make_disk_image(files)))
        machine.attach_device("LTDC", LTDC())

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == pictures, f"showed {halt_code}/{pictures}"
        ltdc = machine.device("LTDC")
        # Each picture: 8 fade-in reloads + 1 show + 8 fade-out reloads.
        assert ltdc.frames_shown == pictures * 17

    return Application(
        name="LCD-uSD",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        max_instructions=200_000_000,
        description="6-picture slideshow with fade-in/out effects.",
    )

"""Handlers must see public globals, not an operation's shadow (§4.3).

Regression for a monitor bug where ``OpecMonitor.global_address``
resolved *every* lookup through the current operation's relocation
table.  An exception handler is not part of any operation and is not
instrumented — while an operation is suspended mid-IRQ, the handler
must read the public original of an external global, not the
operation's (dirty, unsanitised) shadow copy, and must neither read
nor pollute the operation's address cache.
"""

import repro.ir as ir
from repro import build_opec, run_image
from repro.hw import stm32f4_discovery
from repro.ir import I32, VOID
from repro.partition import OperationSpec

PUBLIC_INIT = 100
SHADOW_SENTINEL = 55


def _module():
    """main arms SysTick, then enters an operation that dirties its
    shadow of ``shared`` and spins until a tick fires."""
    module = ir.Module("irqview")
    shared = module.add_global("shared", I32, PUBLIC_INIT)
    first = module.add_global("first_seen", I32, 0)

    # The handler latches its *first* observation of `shared`, +1 so a
    # legitimate zero is distinguishable from "never ran".
    _h, b = ir.define(module, "SysTick_Handler", VOID, [],
                      source_file="stm32_it.c", irq_number=15)
    with b.if_then(b.icmp("eq", b.load(first), 0)):
        b.store(b.add(b.load(shared), 1), first)
    b.ret_void()

    task, b = ir.define(module, "task", VOID, [])
    b.store(SHADOW_SENTINEL, shared)  # lands in the operation's shadow
    with b.for_range(0, 5000):        # ~35k cycles: several ticks fire
        pass
    b.ret_void()

    _m, b = ir.define(module, "main", I32, [])
    b.store(1999, b.mmio(0xE000E014))  # RVR: tick every 2000 cycles
    b.store(7, b.mmio(0xE000E010))     # CSR: ENABLE | TICKINT
    b.load(shared)                     # main + task share it -> external
    b.call(task)
    b.halt(b.load(first))
    return module


class TestHandlerGlobalView:
    def test_handler_sees_public_value_mid_operation(self):
        module = _module()
        artifacts = build_opec(module, stm32f4_discovery(),
                               [OperationSpec("task")])
        result = run_image(artifacts.image, max_instructions=1_000_000)
        # The first tick lands deep inside task's spin loop, after the
        # sentinel store went to task's shadow.  The handler must still
        # observe the public original.
        assert result.halt_code == PUBLIC_INIT + 1
        # Sanity: the shadow really was dirty and written back on exit.
        shared = artifacts.module.get_global("shared")
        public = artifacts.image.public_addresses[shared]
        assert result.machine.read_direct(public, 4) == SHADOW_SENTINEL

    def test_handler_does_not_pollute_operation_cache(self):
        """After the IRQ, the suspended operation must keep resolving
        the external global to its own shadow."""
        module = _module()
        artifacts = build_opec(module, stm32f4_discovery(),
                               [OperationSpec("task")])
        result = run_image(artifacts.image, max_instructions=1_000_000)
        # write_back copied the shadow (55) over the public original;
        # had the handler polluted the cache with the public address,
        # the operation's store would have hit the public copy directly
        # and been clobbered by a stale write-back instead.
        shared = artifacts.module.get_global("shared")
        public = artifacts.image.public_addresses[shared]
        assert result.machine.read_direct(public, 4) == SHADOW_SENTINEL

"""Table 1: security-evaluation metrics (§6.2).

Per application: the number of operations, the average number of
functions per operation, the size of code running at the privileged
level (OPEC-Monitor) with its percentage of the baseline code size, and
the average accessible-global-variable bytes per operation with its
percentage of all writable globals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..image.layout import build_vanilla_image
from .metrics import var2size
from .report import render_table
from .workloads import APP_NAMES, build_app, opec_artifacts


@dataclass
class Table1Row:
    app: str
    operations: int
    avg_functions: float
    privileged_code: int
    privileged_pct: float
    avg_gvars: float
    avg_gvars_pct: float


def compute_row(name: str) -> Table1Row:
    artifacts = opec_artifacts(name)
    app = build_app(name)
    operations = artifacts.operations
    vanilla = build_vanilla_image(app.module, app.board)

    avg_funcs = sum(len(op.functions) for op in operations) / len(operations)
    privileged = artifacts.image.monitor_code_bytes
    baseline_code = vanilla.code_bytes()
    accessible = [
        var2size(op.resources.globals_all) for op in operations
    ]
    avg_gvars = sum(accessible) / len(accessible)
    total_gvars = app.module.total_global_bytes() or 1

    return Table1Row(
        app=name,
        operations=len(operations),
        avg_functions=avg_funcs,
        privileged_code=privileged,
        privileged_pct=100.0 * privileged / baseline_code,
        avg_gvars=avg_gvars,
        avg_gvars_pct=100.0 * avg_gvars / total_gvars,
    )


def compute_table(apps: tuple[str, ...] = APP_NAMES) -> list[Table1Row]:
    return finalize_rows([compute_row(name) for name in apps])


def finalize_rows(rows: list[Table1Row]) -> list[Table1Row]:
    """Append the paper's Average row to per-app rows."""
    rows = list(rows)
    rows.append(Table1Row(
        app="Average",
        operations=round(sum(r.operations for r in rows) / len(rows), 2),
        avg_functions=sum(r.avg_functions for r in rows) / len(rows),
        privileged_code=round(
            sum(r.privileged_code for r in rows) / len(rows)
        ),
        privileged_pct=sum(r.privileged_pct for r in rows) / len(rows),
        avg_gvars=sum(r.avg_gvars for r in rows) / len(rows),
        avg_gvars_pct=sum(r.avg_gvars_pct for r in rows) / len(rows),
    ))
    return rows


def render(rows: list[Table1Row]) -> str:
    return render_table(
        ["Application", "#OPs", "#Avg. Funcs", "#Pri. Code(%)",
         "#Avg. GVars(%)"],
        [
            (r.app, r.operations, f"{r.avg_functions:.2f}",
             f"{r.privileged_code}({r.privileged_pct:.2f})",
             f"{r.avg_gvars:.2f}({r.avg_gvars_pct:.2f})")
            for r in rows
        ],
        title="Table 1: metrics of the security evaluation",
    )


def main() -> None:
    print(render(compute_table()))


if __name__ == "__main__":
    main()

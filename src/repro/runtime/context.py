"""Operation-switch context records (§5.3).

The monitor keeps a privileged stack of these, one per in-flight
operation entry, so nested switches (main → op, op → other op) restore
correctly.  On real hardware this state lives in the monitor's
privileged SRAM; unprivileged code can never reach it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..partition.operations import Operation


@dataclass
class StackRelocation:
    """One relocated pointer argument (Figure 8)."""

    original_address: int
    copy_address: int
    size: int


@dataclass
class SwitchContext:
    """Saved execution context of the operation being suspended."""

    previous: Operation
    saved_sp: int
    saved_stack_mask: int
    relocations: list[StackRelocation] = field(default_factory=list)

"""Tests for the per-function cycle profiler."""

import pytest

import repro.ir as ir
from repro import build_opec, build_vanilla
from repro.eval.profiler import FunctionProfile, Profile, profile_image
from repro.hw import stm32f4_discovery
from repro.ir import I32, VOID

from ..conftest import MINI_SPECS, build_mini_module


def _heavy_module():
    module = ir.Module("prof")
    light, b = ir.define(module, "light", VOID, [])
    b.ret_void()
    heavy, b = ir.define(module, "heavy", VOID, [])
    with b.for_range(0, 500):
        pass
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    b.call(light)
    b.call(heavy)
    b.call(light)
    b.halt(0)
    return module


class TestProfiler:
    def test_attribution_shape(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        heavy = profile.functions["heavy"]
        light = profile.functions["light"]
        assert heavy.self_cycles > light.self_cycles * 10
        assert heavy.calls == 1
        assert light.calls == 2

    def test_total_includes_callees(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        main = profile.functions["main"]
        heavy = profile.functions["heavy"]
        assert main.total_cycles >= heavy.total_cycles
        assert main.self_cycles < main.total_cycles

    def test_cycles_sum_to_run_total(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        total_self = sum(p.self_cycles for p in profile.functions.values())
        assert total_self == profile.total_cycles

    def test_opec_run_shows_switch_overhead_in_main(self, board):
        """Under OPEC, the SVC/switch cost lands in the caller's self
        time — visible as main's self-cycles growing vs the baseline."""
        vanilla = profile_image(build_vanilla(build_mini_module(), board))
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        opec = profile_image(artifacts.image)
        assert opec.halt_code == vanilla.halt_code
        assert opec.functions["main"].self_cycles > \
            vanilla.functions["main"].self_cycles

    def test_render(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        text = profile.render()
        assert "heavy" in text
        assert "Self %" in text


class TestTop:
    def _profile(self):
        profile = Profile()
        profile.functions = {
            name: FunctionProfile(name=name, calls=calls, self_cycles=sc,
                                  total_cycles=tc)
            for name, calls, sc, tc in [
                ("beta", 2, 50, 90), ("alpha", 2, 50, 90),
                ("gamma", 1, 100, 100),
            ]
        }
        return profile

    def test_sorts_by_requested_key(self):
        profile = self._profile()
        assert [p.name for p in profile.top(by="self_cycles")][0] == "gamma"
        assert [p.name for p in profile.top(by="calls")][:2] \
            == ["alpha", "beta"]

    def test_ties_break_on_function_name(self):
        names = [p.name for p in self._profile().top(by="self_cycles")]
        assert names == ["gamma", "alpha", "beta"]  # alpha < beta

    def test_count_truncates(self):
        assert len(self._profile().top(count=2)) == 2

    def test_unknown_sort_key_rejected(self):
        with pytest.raises(ValueError, match="unknown profile sort key"):
            self._profile().top(by="wall_clock")
        with pytest.raises(ValueError, match="name"):
            self._profile().top(by="name")  # exists but not numeric
